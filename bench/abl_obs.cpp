// Ablation: observability overhead. The span tracer promises that
// instrumentation left in the hot path is effectively free while tracing
// is disabled (one relaxed atomic load per site) and cheap when enabled
// (a vector push_back per span). This bench puts numbers on both claims:
//   * micro: ns per begin/end pair and per ambient set/take, disabled vs
//     enabled;
//   * macro: the same fixed-seed FL workload with tracing off vs on —
//     simulator events/sec must not regress measurably with tracing off
//     (the acceptance bar lives in abl_datapath vs BENCH_sim.json; this
//     shows the obs share directly).
//
// A third macro leg runs with tracing, critical-path analysis and
// time-series sampling all enabled — the full observability stack — and
// reports its overhead vs the tracing-off run (acceptance bar: <= 3%).
// The aggregate-model fingerprints of every leg must be bit-identical:
// observability may cost time but must never perturb results.
//
//   abl_obs                 # default: 1M micro iterations, 8x2 macro run
//   DFL_OBS_SMOKE=1 abl_obs # CI-sized
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "core/runner.hpp"
#include "core/trace_export.hpp"
#include "obs/analysis.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dfl;

double micro_begin_end(std::size_t iters) {
  obs::Tracer& tracer = obs::Tracer::instance();
  std::uint64_t sink = 0;
  const bench::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::SpanToken t = tracer.begin("bench", 0, static_cast<std::int64_t>(i));
    sink += t.id;
    tracer.end(t, static_cast<std::int64_t>(i) + 1);
  }
  const double ns = timer.seconds() * 1e9 / static_cast<double>(iters);
  // Keep the loop observable so the compiler cannot delete it.
  if (sink == 0xdeadbeef) std::printf("impossible\n");
  return ns;
}

double micro_ambient(std::size_t iters) {
  std::uint64_t sink = 0;
  const bench::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::set_ambient_span(i + 1);
    sink += obs::take_ambient_span();
  }
  const double ns = timer.seconds() * 1e9 / static_cast<double>(iters);
  if (sink == 0xdeadbeef) std::printf("impossible\n");
  return ns;
}

struct MacroResult {
  double events_per_sec = 0;
  double wall = 0;
  std::uint64_t fingerprint = 14695981039346656037ull;  // FNV-1a of updates
  std::size_t cp_rounds = 0;       // rounds the analyzer attributed
  std::size_t samples = 0;         // time-series snapshots taken
};

void fnv1a_mix(std::uint64_t& h, const std::vector<double>& values) {
  for (const double v : values) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(&v);
    for (std::size_t i = 0; i < sizeof(double); ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  }
}

// One fixed-seed macro run. `full_obs` turns on the entire stack: span
// tracing, wire tracing, periodic time-series sampling and end-of-round
// critical-path analysis — the configuration whose overhead the 3% bar
// governs.
MacroResult macro_run(bool full_obs, int rounds) {
  obs::set_tracing(full_obs);
  core::DeploymentConfig cfg;
  cfg.num_trainers = 8;
  cfg.num_partitions = 2;
  cfg.partition_elements = 32768;
  cfg.aggs_per_partition = 2;
  cfg.num_ipfs_nodes = 4;
  cfg.train_time = sim::from_millis(500);
  cfg.seed = 42;
  core::Deployment d(cfg);
  std::ostringstream ts_sink;
  obs::TimeSeriesWriter sampler(ts_sink);
  if (full_obs) {
    d.context().net.set_tracing(true);
    d.enable_metrics_sampling(sampler, sim::from_seconds(5));
  }
  MacroResult out;
  std::uint64_t events = 0;
  const bench::WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    const core::RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    events += m.datapath.sim_events;
    fnv1a_mix(out.fingerprint, d.last_global_update());
    if (m.critical_path.analyzed) ++out.cp_rounds;
  }
  out.wall = timer.seconds();
  out.samples = sampler.samples();
  obs::set_tracing(false);
  obs::Tracer::instance().clear();
  out.events_per_sec =
      out.wall <= 0 ? 0 : static_cast<double>(events) / out.wall;
  return out;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("DFL_OBS_SMOKE") != nullptr;
  const std::size_t iters = smoke ? 100'000 : 1'000'000;
  const int rounds = smoke ? 1 : 3;

  bench::print_header("observability overhead");

  obs::set_tracing(false);
  const double off_ns = micro_begin_end(iters);
  obs::set_tracing(true);
  const double on_ns = micro_begin_end(iters);
  obs::set_tracing(false);
  obs::Tracer::instance().clear();
  const double ambient_ns = micro_ambient(iters);

  std::printf("  begin/end pair, tracing off: %7.2f ns\n", off_ns);
  std::printf("  begin/end pair, tracing on:  %7.2f ns\n", on_ns);
  std::printf("  ambient set+take:            %7.2f ns\n", ambient_ns);
  bench::print_note("'off' is the cost left in every instrumented hot path");

  const MacroResult off = macro_run(false, rounds);
  const MacroResult off2 = macro_run(false, rounds);
  const MacroResult full = macro_run(true, rounds);
  const double overhead_pct =
      off.wall <= 0 ? 0.0 : 100.0 * (full.wall - off.wall) / off.wall;
  std::printf("  macro events/sec, obs off:  %10.0f\n", off.events_per_sec);
  std::printf("  macro events/sec, full obs: %10.0f (wall %+.1f%%, %zu cp rounds, %zu samples)\n",
              full.events_per_sec, overhead_pct, full.cp_rounds, full.samples);
  bench::print_note("macro numbers are noisy at this size; the contract is the micro 'off' path");

  // Observability must never perturb results: the aggregate-model
  // fingerprint is bit-identical across reruns with tracing off AND with
  // the full stack (tracing + sampling + analysis) on.
  const bool rerun_identical = off.fingerprint == off2.fingerprint;
  const bool obs_identical = off.fingerprint == full.fingerprint;
  std::printf("  aggregate fingerprint:       %016llx\n",
              static_cast<unsigned long long>(off.fingerprint));
  std::printf("  rerun bit-identical:         %s\n", rerun_identical ? "yes" : "NO");
  std::printf("  full-obs bit-identical:      %s\n", obs_identical ? "yes" : "NO");
  std::printf("  full-obs overhead:           %+.1f%% (bar: <= 3%% at default size)\n",
              overhead_pct);
  if (!rerun_identical || !obs_identical) {
    std::printf("  FAIL: observability perturbed the simulation\n");
    return 1;
  }
  return 0;
}
