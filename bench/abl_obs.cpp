// Ablation: observability overhead. The span tracer promises that
// instrumentation left in the hot path is effectively free while tracing
// is disabled (one relaxed atomic load per site) and cheap when enabled
// (a vector push_back per span). This bench puts numbers on both claims:
//   * micro: ns per begin/end pair and per ambient set/take, disabled vs
//     enabled;
//   * macro: the same fixed-seed FL workload with tracing off vs on —
//     simulator events/sec must not regress measurably with tracing off
//     (the acceptance bar lives in abl_datapath vs BENCH_sim.json; this
//     shows the obs share directly).
//
//   abl_obs                 # default: 1M micro iterations, 8x2 macro run
//   DFL_OBS_SMOKE=1 abl_obs # CI-sized
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/runner.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dfl;

double micro_begin_end(std::size_t iters) {
  obs::Tracer& tracer = obs::Tracer::instance();
  std::uint64_t sink = 0;
  const bench::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::SpanToken t = tracer.begin("bench", 0, static_cast<std::int64_t>(i));
    sink += t.id;
    tracer.end(t, static_cast<std::int64_t>(i) + 1);
  }
  const double ns = timer.seconds() * 1e9 / static_cast<double>(iters);
  // Keep the loop observable so the compiler cannot delete it.
  if (sink == 0xdeadbeef) std::printf("impossible\n");
  return ns;
}

double micro_ambient(std::size_t iters) {
  std::uint64_t sink = 0;
  const bench::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::set_ambient_span(i + 1);
    sink += obs::take_ambient_span();
  }
  const double ns = timer.seconds() * 1e9 / static_cast<double>(iters);
  if (sink == 0xdeadbeef) std::printf("impossible\n");
  return ns;
}

double macro_events_per_sec(bool tracing, int rounds) {
  obs::set_tracing(tracing);
  core::DeploymentConfig cfg;
  cfg.num_trainers = 8;
  cfg.num_partitions = 2;
  cfg.partition_elements = 32768;
  cfg.aggs_per_partition = 2;
  cfg.num_ipfs_nodes = 4;
  cfg.train_time = sim::from_millis(500);
  cfg.seed = 42;
  core::Deployment d(cfg);
  if (tracing) d.context().net.set_tracing(true);
  std::uint64_t events = 0;
  const bench::WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    events += d.run_round(static_cast<std::uint32_t>(r)).datapath.sim_events;
  }
  const double wall = timer.seconds();
  obs::set_tracing(false);
  obs::Tracer::instance().clear();
  return wall <= 0 ? 0 : static_cast<double>(events) / wall;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("DFL_OBS_SMOKE") != nullptr;
  const std::size_t iters = smoke ? 100'000 : 1'000'000;
  const int rounds = smoke ? 1 : 3;

  bench::print_header("observability overhead");

  obs::set_tracing(false);
  const double off_ns = micro_begin_end(iters);
  obs::set_tracing(true);
  const double on_ns = micro_begin_end(iters);
  obs::set_tracing(false);
  obs::Tracer::instance().clear();
  const double ambient_ns = micro_ambient(iters);

  std::printf("  begin/end pair, tracing off: %7.2f ns\n", off_ns);
  std::printf("  begin/end pair, tracing on:  %7.2f ns\n", on_ns);
  std::printf("  ambient set+take:            %7.2f ns\n", ambient_ns);
  bench::print_note("'off' is the cost left in every instrumented hot path");

  const double off_eps = macro_events_per_sec(false, rounds);
  const double on_eps = macro_events_per_sec(true, rounds);
  std::printf("  macro events/sec, tracing off: %10.0f\n", off_eps);
  std::printf("  macro events/sec, tracing on:  %10.0f (%+.1f%%)\n", on_eps,
              off_eps <= 0 ? 0.0 : 100.0 * (on_eps - off_eps) / off_eps);
  bench::print_note("macro numbers are noisy at this size; the contract is the micro 'off' path");
  return 0;
}
