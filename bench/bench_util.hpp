// Shared helpers for the figure-reproduction benches: wall-clock timing and
// uniform table printing.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace dfl::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_note(const std::string& note) {
  std::printf("  # %s\n", note.c_str());
}

/// True when the caller asked for the full (slow) parameter sweep.
bool full_sweep_requested();

}  // namespace dfl::bench
