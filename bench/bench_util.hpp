// Shared helpers for the figure-reproduction benches: wall-clock timing,
// uniform table printing, and machine-readable result emission.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace dfl::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_note(const std::string& note) {
  std::printf("  # %s\n", note.c_str());
}

/// True when the caller asked for the full (slow) parameter sweep.
bool full_sweep_requested();

/// True when DFL_BENCH_SMOKE=1 asks for the trimmed CI-gate sweep.
bool smoke_requested();

/// One machine-readable measurement row. `isa`, `cpu` and `digest` are
/// optional metadata (omitted from the JSON when empty): the ISA tier the
/// measured code dispatched to ("scalar"/"avx2"/"avx512ifma"), the host's
/// detected CPU features (dfl::cpu_feature_string()), and a hex digest of
/// the operation's result so independent backends can be asserted
/// bit-identical by tools/check_bench_sim.py.
struct BenchRecord {
  std::string op;       // e.g. "commit", "verify", "BM_FieldMul"
  std::size_t size = 0; // elements / range argument
  std::string backend;  // e.g. "naive", "pippenger", "simd", "fixed_base"
  std::size_t threads = 1;
  double ns_per_op = 0; // whole-operation wall time in ns
  std::string isa;      // dispatch tier that produced the number
  std::string cpu;      // detected CPU features on the measuring host
  std::string digest;   // hex result digest for cross-backend equality
};

/// Output path: $DFL_BENCH_JSON, or "BENCH_crypto.json" in the cwd.
std::string bench_json_path();

/// Merges `records` into the JSON file at bench_json_path(): existing rows
/// with the same (op, size, backend, threads) key are replaced, everything
/// else is kept, so several bench binaries can contribute to one file.
void write_bench_json(const std::vector<BenchRecord>& records);

}  // namespace dfl::bench
