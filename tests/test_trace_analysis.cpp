// Critical-path analysis and in-engine SLO evaluation over real runs: the
// blame partition invariant (category durations sum exactly to the round
// span), attribution in async/sharded modes, determinism of the analysis,
// and the SloEvaluator's clause semantics.
#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/runner.hpp"
#include "core/slo.hpp"
#include "core/trace_export.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace dfl::core {
namespace {

DeploymentConfig tiny() {
  DeploymentConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_partitions = 2;
  cfg.partition_elements = 16;
  cfg.num_ipfs_nodes = 2;
  cfg.train_time = sim::from_millis(100);
  cfg.schedule = Schedule{sim::from_seconds(20), sim::from_seconds(40), sim::from_millis(50)};
  return cfg;
}

// The tracer is a process-wide singleton: run one traced deployment at a
// time, starting from a clean log, and leave tracing off afterwards.
struct TracedRun : ::testing::Test {
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::set_tracing(true);
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::Tracer::instance().clear();
  }
};

obs::Analysis analyze(Deployment& d) {
  name_host_tracks(d.context().net);
  return obs::analyze_critical_paths(obs::Tracer::instance().snapshot(),
                                     wire_slices(d.context().net));
}

/// Stable textual form of an analysis for identity comparisons. Span ids
/// are deliberately excluded: the tracer's per-thread indices survive
/// clear() (ids never repeat), so in-process reruns shift them — separate
/// processes (the CI hash comparison) get identical ids too.
std::string serialize(const obs::Analysis& a) {
  std::ostringstream os;
  for (const obs::RoundCriticalPath& r : a.rounds) {
    os << "round " << r.iter << " [" << r.start_ns << "," << r.end_ns << ")\n";
    for (std::size_t b = 0; b < obs::kBlameCount; ++b) os << r.blame_ns[b] << " ";
    os << "\n";
    for (const obs::CriticalSegment& s : r.segments) {
      os << s.start_ns << " " << s.end_ns << " " << static_cast<int>(s.blame) << " "
         << s.track << " " << s.name << " " << s.wire << "\n";
    }
  }
  return os.str();
}

TEST_F(TracedRun, SyncBlamePartitionsRoundExactly) {
  auto cfg = tiny();
  Deployment d(cfg);
  d.context().net.set_tracing(true);
  const RoundMetrics m0 = d.run_round(0);
  const RoundMetrics m1 = d.run_round(1);

  const obs::Analysis a = analyze(d);
  ASSERT_EQ(a.rounds.size(), 2u);
  for (const obs::RoundCriticalPath& r : a.rounds) {
    ASSERT_GT(r.total_ns(), 0);
    std::int64_t sum = 0;
    for (std::size_t b = 0; b < obs::kBlameCount; ++b) sum += r.blame_ns[b];
    // Exact partition, not a 1% bound: the backward walk emits contiguous
    // segments covering [start, end) by construction.
    EXPECT_EQ(sum, r.total_ns());
    ASSERT_FALSE(r.segments.empty());
    EXPECT_EQ(r.segments.front().start_ns, r.start_ns);
    EXPECT_EQ(r.segments.back().end_ns, r.end_ns);
    for (std::size_t i = 1; i < r.segments.size(); ++i) {
      EXPECT_EQ(r.segments[i].start_ns, r.segments[i - 1].end_ns);
    }
    // A real round trains and moves bytes; both must appear on the path.
    EXPECT_GT(r.blame_ns[static_cast<std::size_t>(obs::Blame::kTrain)], 0);
    EXPECT_GT(r.blame_ns[static_cast<std::size_t>(obs::Blame::kWire)], 0);
    std::int64_t host_sum = 0;
    for (const auto& [host, ns] : r.host_ns) host_sum += ns;
    EXPECT_EQ(host_sum, r.total_ns());
  }

  // run_round attached the same records to the metrics it returned.
  for (const RoundMetrics* m : {&m0, &m1}) {
    ASSERT_TRUE(m->critical_path.analyzed);
    EXPECT_EQ(m->critical_path.category_sum(), m->critical_path.total_ns);
    EXPECT_FALSE(m->critical_path.dominant_host.empty());
    EXPECT_GT(m->critical_path.dominant_fraction(), 0.0);
  }
}

TEST_F(TracedRun, AnalysisIsDeterministicAcrossIdenticalRuns) {
  auto cfg = tiny();
  cfg.seed = 99;
  std::string first;
  for (int run = 0; run < 2; ++run) {
    obs::Tracer::instance().clear();
    auto d = std::make_unique<Deployment>(cfg);
    d->context().net.set_tracing(true);
    (void)d->run_round(0);
    const std::string s = serialize(analyze(*d));
    ASSERT_FALSE(s.empty());
    if (run == 0) {
      first = s;
    } else {
      EXPECT_EQ(s, first);  // byte-identical blame attribution
    }
  }
}

TEST_F(TracedRun, AsyncRoundsGetPerIterFramesWithStaleWait) {
  auto cfg = tiny();
  cfg.options.async_rounds = true;
  cfg.options.async_period = sim::from_seconds(1);
  // A straggler forces the stale-fold path: kSlow trains t_train + 1s, and
  // with this schedule the fresh gather deadline t_train + (t_sync -
  // t_train)/4 = 2.5s is always missed, so aggregators emit
  // async_fold/stale_update spans (same geometry as test_async.cpp).
  cfg.schedule = Schedule{sim::from_seconds(2), sim::from_seconds(4),
                          sim::from_millis(50)};
  cfg.trainer_behaviors[0] = TrainerBehavior::kSlow;
  Deployment d(cfg);
  d.context().net.set_tracing(true);
  const RunSummary s = d.run(3);
  ASSERT_EQ(s.rounds.size(), 3u);

  // async_fold / stale_update spans must parent into real spans and climb
  // to a per-host "round" frame, so they land inside the right round's DAG
  // instead of dangling.
  const auto snap = obs::Tracer::instance().snapshot();
  std::map<obs::SpanId, const obs::Span*> by_id;
  for (const obs::Span& sp : snap.spans) by_id[sp.id] = &sp;
  std::size_t folds = 0;
  for (const obs::Span& sp : snap.spans) {
    if (std::string(sp.name) != "async_fold" && std::string(sp.name) != "stale_update") {
      continue;
    }
    ++folds;
    EXPECT_NE(sp.parent, 0u) << sp.name << " span dangles";
    const obs::Span* cur = &sp;
    bool reached_round = false;
    for (int hop = 0; hop < 16 && cur->parent != 0; ++hop) {
      const auto it = by_id.find(cur->parent);
      if (it == by_id.end()) break;
      cur = it->second;
      if (std::string(cur->name) == "round" || std::string(cur->name) == "async_run") {
        reached_round = true;
        break;
      }
    }
    EXPECT_TRUE(reached_round) << sp.name << " does not reach a round frame";
  }
  EXPECT_GT(folds, 0u);

  const obs::Analysis a = analyze(d);
  ASSERT_EQ(a.rounds.size(), 3u);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].iter, static_cast<std::uint32_t>(r));
    std::int64_t sum = 0;
    for (std::size_t b = 0; b < obs::kBlameCount; ++b) sum += a.rounds[r].blame_ns[b];
    EXPECT_EQ(sum, a.rounds[r].total_ns());
    // The summary rounds carry the same analysis.
    EXPECT_TRUE(s.rounds[r].critical_path.analyzed);
    EXPECT_EQ(s.rounds[r].critical_path.total_ns, a.rounds[r].total_ns());
  }
}

TEST_F(TracedRun, ShardedRunMatchesSerialBlameAndMarksCrossShardWires) {
  auto cfg = tiny();
  cfg.seed = 7;

  obs::Analysis serial;
  {
    obs::Tracer::instance().clear();
    cfg.shards = 1;
    auto d = std::make_unique<Deployment>(cfg);
    d->context().net.set_tracing(true);
    (void)d->run_round(0);
    serial = analyze(*d);
  }

  obs::Tracer::instance().clear();
  cfg.shards = 2;
  auto d = std::make_unique<Deployment>(cfg);
  d->context().net.set_tracing(true);
  (void)d->run_round(0);
  const std::vector<obs::WireSlice> wires = wire_slices(d->context().net);
  std::size_t xshard = 0;
  for (const obs::WireSlice& w : wires) {
    for (const obs::SpanAttr& at : w.attrs) {
      if (std::string(at.key) == "xshard") ++xshard;
    }
  }
  EXPECT_GT(xshard, 0u) << "K=2 run produced no cross-shard wire slices";

  // Windowed execution only partitions the serial event order, so the
  // blame attribution must be bit-identical to K = 1.
  const obs::Analysis sharded = analyze(*d);
  ASSERT_EQ(sharded.rounds.size(), serial.rounds.size());
  for (std::size_t r = 0; r < sharded.rounds.size(); ++r) {
    EXPECT_EQ(sharded.rounds[r].total_ns(), serial.rounds[r].total_ns());
    for (std::size_t b = 0; b < obs::kBlameCount; ++b) {
      EXPECT_EQ(sharded.rounds[r].blame_ns[b], serial.rounds[r].blame_ns[b])
          << "category " << obs::blame_name(static_cast<obs::Blame>(b))
          << " diverges at K=2";
    }
  }
  // Sharded host tracks are shard-prefixed in the export ("s0/trainer1").
  bool prefixed = false;
  for (const auto& [host, ns] : sharded.rounds[0].host_ns) {
    if (host.rfind("s0/", 0) == 0 || host.rfind("s1/", 0) == 0) prefixed = true;
  }
  EXPECT_TRUE(prefixed);
}

TEST_F(TracedRun, MetricsSamplingNeverPerturbsResults) {
  auto cfg = tiny();
  cfg.seed = 11;

  obs::Tracer::instance().clear();
  auto plain = std::make_unique<Deployment>(cfg);
  const RoundMetrics mp = plain->run_round(0);
  const std::vector<double> update = plain->last_global_update();
  plain.reset();

  obs::Tracer::instance().clear();
  auto sampled = std::make_unique<Deployment>(cfg);
  std::ostringstream ts;
  obs::TimeSeriesWriter writer(ts);
  sampled->enable_metrics_sampling(writer, sim::from_seconds(1));
  const RoundMetrics ms = sampled->run_round(0);

  EXPECT_EQ(mp.round_done, ms.round_done);
  EXPECT_EQ(mp.partitions_complete, ms.partitions_complete);
  ASSERT_EQ(update.size(), sampled->last_global_update().size());
  for (std::size_t i = 0; i < update.size(); ++i) {
    EXPECT_DOUBLE_EQ(update[i], sampled->last_global_update()[i]);
  }
  EXPECT_GT(writer.samples(), 0u);
  EXPECT_NE(ts.str().find("\"t_ms\""), std::string::npos);
}

TEST(SloEvaluator, RoundAndFinalizeClauseSemantics) {
  SloEvaluator slo({{"completion_rate_min", 1.0},
                    {"round_p50_ms_max", 150.0},
                    {"rounds_complete_min", 2.0},
                    {"crashes_min", 1.0}});
  ASSERT_TRUE(slo.active());

  RoundMetrics good;
  good.iter = 0;
  good.partitions_total = 2;
  good.partitions_complete = 2;
  good.global_update_complete = true;
  good.round_start = 0;
  good.round_done = sim::from_millis(100);
  EXPECT_TRUE(slo.on_round(good, good.round_done).empty());

  RoundMetrics bad = good;
  bad.iter = 1;
  bad.partitions_complete = 1;
  bad.global_update_complete = false;
  bad.round_start = sim::from_millis(100);
  bad.round_done = sim::from_millis(600);
  // p50 of [100, 500] is 100 under check_scenario.py's half-even nearest
  // rank (round(0.5) = 0), so only the completion clause trips here.
  const auto breaches = slo.on_round(bad, bad.round_done);
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].key, "completion_rate_min");
  EXPECT_DOUBLE_EQ(breaches[0].actual, 0.5);

  RoundMetrics slow = good;
  slow.iter = 2;
  slow.round_start = sim::from_millis(600);
  slow.round_done = sim::from_millis(1100);  // [100,500,500]: p50 = 500
  const auto slow_breaches = slo.on_round(slow, slow.round_done);
  ASSERT_EQ(slow_breaches.size(), 1u);
  EXPECT_EQ(slow_breaches[0].key, "round_p50_ms_max");
  EXPECT_DOUBLE_EQ(slow_breaches[0].actual, 500.0);

  // Finalize: mean completion 2.5/3 < 1.0; rounds_complete 2 meets the
  // bound; no crashes were injected although the scenario demanded one.
  const auto final_breaches = slo.finalize(slow.round_done);
  ASSERT_EQ(final_breaches.size(), 2u);
  EXPECT_EQ(final_breaches[0].key, "completion_rate_min");
  EXPECT_DOUBLE_EQ(final_breaches[0].actual, 2.5 / 3.0);
  EXPECT_EQ(final_breaches[1].key, "crashes_min");
  EXPECT_EQ(slo.breaches_total(), 4u);
}

TEST(SloEvaluator, BreachAttributionUsesCriticalPath) {
  SloEvaluator slo({{"completion_rate_min", 1.0}});
  RoundMetrics m;
  m.iter = 12;
  m.partitions_total = 4;
  m.partitions_complete = 2;
  m.round_start = 0;
  m.round_done = sim::from_millis(50);
  m.critical_path.analyzed = true;
  m.critical_path.total_ns = 1000;
  m.critical_path.wire_ns = 780;
  m.critical_path.queue_ns = 220;
  m.critical_path.dominant_category = "wire";
  m.critical_path.dominant_host = "s2/trainer7";
  m.critical_path.dominant_host_ns = 780;
  const auto breaches = slo.on_round(m, m.round_done);
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].attribution, "78% wire on s2/trainer7");
}

}  // namespace
}  // namespace dfl::core
