// ShardedSimulator: conservative-window protocol, deterministic cross-shard
// merges, bit-identity across shard counts, and the window-calendar bucket
// queue the sharded engine switches its shards to.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/pool.hpp"

namespace dfl::sim {
namespace {

TEST(ShardPlacement, BlocksBalanceAndCover) {
  const ShardPlacement p = ShardPlacement::blocks(10, 4);
  EXPECT_EQ(p.shards, 4u);
  ASSERT_EQ(p.hosts(), 10u);
  std::vector<int> per_shard(4, 0);
  for (std::uint32_t h = 0; h < 10; ++h) {
    const std::uint32_t k = p.shard(h);
    ASSERT_LT(k, 4u);
    ++per_shard[k];
    if (h > 0) EXPECT_GE(k, p.shard(h - 1));  // contiguous blocks
  }
  for (int n : per_shard) EXPECT_GE(n, 2);  // 10 hosts over 4 shards: 2..3 each
}

TEST(ShardPlacement, ValidateNamesTheField) {
  ShardPlacement p;
  p.shards = 0;
  try {
    p.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shards"), std::string::npos);
  }
  p.shards = 2;
  p.shard_of = {0, 1, 5};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ShardedSimulator, SingleShardDelegatesToSerial) {
  ShardedSimulator engine(1, 0);
  std::vector<int> order;
  engine.schedule_on(0, 30, [&] { order.push_back(3); });
  engine.schedule_on(0, 10, [&] { order.push_back(1); });
  engine.schedule_on(0, 20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.events_processed(), 3u);
  EXPECT_EQ(engine.stats().windows, 0u);  // serial path: no window protocol
}

TEST(ShardedSimulator, CrossShardMergeIsDeterministicFifo) {
  // Equal-timestamp messages from several source shards into one
  // destination must execute in (timestamp, sending shard, send sequence)
  // order, on every run.
  std::vector<std::string> first;
  for (int rep = 0; rep < 3; ++rep) {
    ShardedSimulator engine(4, 100);
    std::vector<std::string> order;
    for (std::uint32_t src = 1; src < 4; ++src) {
      const std::uint32_t s = src;
      engine.schedule_on(s, 0, [&engine, &order, s] {
        // Two sends per shard at the same target timestamp: sequence must
        // break the tie within a shard, shard id across shards.
        for (int j = 0; j < 2; ++j) {
          engine.send(s, 0, 1000, [&order, s, j] {
            order.push_back("s" + std::to_string(s) + "#" + std::to_string(j));
          });
        }
      });
    }
    engine.run();
    const std::vector<std::string> want{"s1#0", "s1#1", "s2#0", "s2#1", "s3#0", "s3#1"};
    EXPECT_EQ(order, want);
    if (rep == 0) first = order;
    EXPECT_EQ(order, first);
  }
}

TEST(ShardedSimulator, SendBelowLookaheadThrows) {
  ShardedSimulator engine(2, 500);
  engine.schedule_on(0, 100, [&engine] {
    engine.send(0, 1, 300, [] {});  // 300 < now(100) + lookahead(500)
  });
  EXPECT_THROW(engine.run(), std::logic_error);
}

// A deterministic little workload: a ring of hosts passing tokens with a
// commutative fold, runnable at any shard count. Returns (hash, events).
struct RingResult {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  TimeNs done = 0;
};

RingResult run_ring(std::uint32_t shards, ThreadPool* pool = nullptr) {
  constexpr std::uint32_t kHosts = 24;
  constexpr TimeNs kLookahead = 200;
  const ShardPlacement p = ShardPlacement::blocks(kHosts, shards);
  ShardedSimulator engine(shards, kLookahead, pool);
  std::vector<std::uint64_t> acc(kHosts, 0);

  struct Hop {
    ShardedSimulator* engine;
    const ShardPlacement* p;
    std::vector<std::uint64_t>* acc;
    void operator()(std::uint32_t host, std::uint64_t token, int hops) const {
      (*acc)[host] += token * 0x9e3779b97f4a7c15ULL;  // commutative fold
      if (hops == 0) return;
      const std::uint32_t next = (host + 7) % kHosts;
      const std::uint32_t src = p->shard(host);
      const std::uint32_t dst = p->shard(next);
      const TimeNs at = engine->shard(src).now() + kLookahead;
      auto self = *this;
      auto fn = [self, next, token, hops] { self(next, token + 1, hops - 1); };
      if (src == dst) {
        engine->schedule_on(src, at, std::move(fn));
      } else {
        engine->send(src, dst, at, std::move(fn));
      }
    }
  };
  const Hop hop{&engine, &p, &acc};
  for (std::uint32_t h = 0; h < kHosts; ++h) {
    const std::uint32_t k = p.shard(h);
    engine.schedule_on(k, h % 5, [hop, h] { hop(h, h, 40); });
  }
  engine.run();

  RingResult r;
  for (std::uint64_t v : acc) r.hash += v ^ (v >> 31);
  r.events = engine.events_processed();
  r.done = engine.now();
  return r;
}

TEST(ShardedSimulator, BitIdenticalAcrossShardCounts) {
  const RingResult serial = run_ring(1);
  ASSERT_GT(serial.events, 0u);
  for (std::uint32_t k : {2u, 3u, 4u, 8u}) {
    const RingResult sharded = run_ring(k);
    EXPECT_EQ(sharded.hash, serial.hash) << "K=" << k;
    EXPECT_EQ(sharded.events, serial.events) << "K=" << k;
  }
}

TEST(ShardedSimulator, ParallelPoolMatchesSerial) {
  // Window bodies on pool threads (one shard per task) must produce the
  // same results as the caller-thread path. Run under TSan in CI.
  const RingResult serial = run_ring(1);
  ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    const RingResult parallel = run_ring(4, &pool);
    EXPECT_EQ(parallel.hash, serial.hash);
    EXPECT_EQ(parallel.events, serial.events);
  }
}

TEST(ShardedSimulator, RunUntilStopsAtBoundary) {
  ShardedSimulator engine(2, 100);
  int ran = 0;
  engine.schedule_on(0, 50, [&] { ++ran; });
  engine.schedule_on(1, 150, [&] { ++ran; });
  engine.schedule_on(0, 5000, [&] { ++ran; });
  engine.run_until(200);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.events_pending(), 1u);
  engine.run();
  EXPECT_EQ(ran, 3);
}

TEST(ShardedSimulator, ResetDropsPendingAndRerunsClean) {
  ShardedSimulator engine(2, 100);
  int ran = 0;
  engine.schedule_on(0, 10, [&engine, &ran] {
    ++ran;
    engine.send(0, 1, 500, [&ran] { ran += 100; });
  });
  engine.run_until(50);  // executes the first event, leaves the send queued
  EXPECT_EQ(ran, 1);
  engine.reset();
  EXPECT_EQ(engine.events_pending(), 0u);
  engine.run();  // nothing left — the outbox message must be gone too
  EXPECT_EQ(ran, 1);

  // The engine stays usable after reset; FIFO ties still hold.
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_on(0, engine.shard(0).now() + 10, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ShardedSimulator, StatsCountWindowsAndCrossTraffic) {
  ShardedSimulator engine(2, 100);
  engine.schedule_on(0, 0, [&engine] {
    engine.send(0, 1, 100, [] {});
    engine.send(0, 1, 250, [] {});
  });
  engine.run();
  const ShardedStats& s = engine.stats();
  EXPECT_GE(s.windows, 2u);
  EXPECT_EQ(s.cross_shard_events, 2u);
  ASSERT_EQ(s.shard_events.size(), 2u);
  EXPECT_EQ(s.shard_events[0] + s.shard_events[1], engine.events_processed());
}

TEST(ShardedSimulator, LookaheadMustBePositive) {
  EXPECT_THROW(ShardedSimulator(2, 0), std::invalid_argument);
  EXPECT_NO_THROW(ShardedSimulator(1, 0));  // ignored at K = 1
}

}  // namespace
}  // namespace dfl::sim
