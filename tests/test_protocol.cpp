// End-to-end protocol tests: whole FL rounds over the simulated storage
// network, exercising Algorithm 1, merge-and-download, multi-aggregator
// synchronization, verifiable aggregation and fault injection.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "crypto/encoding.hpp"

namespace dfl::core {
namespace {

DeploymentConfig small_config() {
  DeploymentConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_partitions = 2;
  cfg.partition_elements = 32;
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = 2;
  cfg.providers_per_agg = 1;
  cfg.schedule = Schedule{sim::from_seconds(60), sim::from_seconds(120), sim::from_millis(50)};
  cfg.train_time = sim::from_millis(200);
  return cfg;
}

/// The exact average the protocol must reproduce: mean over trainers of
/// their encoded gradients, decoded.
std::vector<double> expected_average(Deployment& d, std::uint32_t iter) {
  const auto& cfg = d.config();
  const std::size_t n = cfg.partition_elements * cfg.num_partitions;
  std::vector<std::int64_t> sum(n, 0);
  for (std::uint32_t t = 0; t < cfg.num_trainers; ++t) {
    const auto g = d.source().gradient(t, iter);
    for (std::size_t i = 0; i < n; ++i) sum[i] += g[i];
  }
  std::vector<double> avg(n);
  for (std::size_t i = 0; i < n; ++i) {
    avg[i] = crypto::decode_fixed(sum[i], cfg.options.frac_bits) /
             static_cast<double>(cfg.num_trainers);
  }
  return avg;
}

void expect_round_complete(const RoundMetrics& m) {
  for (const auto& t : m.trainers) {
    EXPECT_FALSE(t.aborted);
    EXPECT_FALSE(t.update_missing);
    EXPECT_GE(t.model_ready_at, 0);
  }
  EXPECT_GE(m.first_gradient_announce, 0);
  EXPECT_GE(m.round_done, 0);
}

void expect_update_matches(Deployment& d, std::uint32_t iter) {
  const auto expected = expected_average(d, iter);
  const auto& got = d.last_global_update();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-9) << "element " << i;
  }
}

TEST(Protocol, SingleRoundCompletes) {
  Deployment d(small_config());
  const RoundMetrics m = d.run_round(0);
  expect_round_complete(m);
  expect_update_matches(d, 0);
  EXPECT_EQ(m.rejected_updates, 0);
}

TEST(Protocol, AggregationIsExactAcrossRounds) {
  Deployment d(small_config());
  for (std::uint32_t iter = 0; iter < 3; ++iter) {
    const RoundMetrics m = d.run_round(iter);
    expect_round_complete(m);
    expect_update_matches(d, iter);
  }
}

TEST(Protocol, EachAggregatorOnlySeesItsPartition) {
  auto cfg = small_config();
  cfg.num_partitions = 3;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  expect_round_complete(m);
  // 3 aggregators, one per partition, each downloaded 4 gradients of ~one
  // partition's size.
  ASSERT_EQ(m.aggregators.size(), 3u);
  const auto payload_bytes = Payload::wire_size(cfg.partition_elements + 1);
  for (const auto& a : m.aggregators) {
    EXPECT_EQ(a.gradients_aggregated, cfg.num_trainers);
    EXPECT_EQ(a.bytes_received, cfg.num_trainers * payload_bytes);
  }
}

TEST(Protocol, MergeAndDownloadProducesIdenticalUpdate) {
  auto plain_cfg = small_config();
  Deployment plain(plain_cfg);
  (void)plain.run_round(0);

  auto merge_cfg = small_config();
  merge_cfg.options.merge_and_download = true;
  merge_cfg.providers_per_agg = 2;
  Deployment merged(merge_cfg);
  const RoundMetrics m = merged.run_round(0);
  expect_round_complete(m);

  // Same gradients (same seed) => byte-identical averaged update.
  ASSERT_EQ(plain.last_global_update().size(), merged.last_global_update().size());
  for (std::size_t i = 0; i < plain.last_global_update().size(); ++i) {
    ASSERT_DOUBLE_EQ(plain.last_global_update()[i], merged.last_global_update()[i]);
  }
  // And the aggregators issued merge requests instead of per-gradient gets.
  for (const auto& a : m.aggregators) {
    EXPECT_GT(a.merge_requests, 0u);
    EXPECT_LE(a.merge_requests, 2u);  // at most one per provider
  }
}

TEST(Protocol, MergeAndDownloadReducesAggregatorTraffic) {
  auto plain_cfg = small_config();
  plain_cfg.num_trainers = 8;
  Deployment plain(plain_cfg);
  const RoundMetrics mp = plain.run_round(0);

  auto merge_cfg = plain_cfg;
  merge_cfg.options.merge_and_download = true;
  Deployment merged(merge_cfg);
  const RoundMetrics mm = merged.run_round(0);

  EXPECT_LT(mm.mean_aggregator_bytes(), mp.mean_aggregator_bytes() / 4.0);
}

TEST(Protocol, MultiAggregatorSyncProducesCorrectGlobalUpdate) {
  auto cfg = small_config();
  cfg.num_trainers = 8;
  cfg.aggs_per_partition = 2;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  expect_round_complete(m);
  expect_update_matches(d, 0);
  // Each aggregator gathered only its half of the trainers.
  for (const auto& a : m.aggregators) {
    EXPECT_EQ(a.gradients_aggregated, 4u);
    EXPECT_GE(a.sync_done_at, a.gather_done_at);
  }
}

TEST(Protocol, FourAggregatorsPerPartition) {
  auto cfg = small_config();
  cfg.num_trainers = 8;
  cfg.num_partitions = 1;
  cfg.aggs_per_partition = 4;
  cfg.num_ipfs_nodes = 4;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  expect_round_complete(m);
  expect_update_matches(d, 0);
}

TEST(Protocol, VerifiableModeAcceptsHonestRound) {
  auto cfg = small_config();
  cfg.options.verifiable = true;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  expect_round_complete(m);
  expect_update_matches(d, 0);
  EXPECT_EQ(m.rejected_updates, 0);
  EXPECT_EQ(d.directory().stats().verifications_failed, 0u);
  EXPECT_GT(d.directory().stats().verifications, 0u);
}

TEST(Protocol, VerifiableModeRejectsDroppingAggregator) {
  auto cfg = small_config();
  cfg.options.verifiable = true;
  cfg.behaviors[0] = AggBehavior::kDropsGradients;  // aggregator of partition 0
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  // The directory must refuse the incomplete update for partition 0 ...
  EXPECT_GT(d.directory().stats().verifications_failed, 0u);
  EXPECT_GT(m.rejected_updates, 0);
  EXPECT_TRUE(m.aggregators[0].rejected_by_directory);
  // ... so trainers never see a poisoned model: the round simply fails.
  EXPECT_TRUE(d.last_global_update().empty());
  for (const auto& t : m.trainers) EXPECT_TRUE(t.update_missing);
}

TEST(Protocol, VerifiableModeRejectsAlteringAggregator) {
  auto cfg = small_config();
  cfg.options.verifiable = true;
  cfg.behaviors[1] = AggBehavior::kAltersGradients;  // partition 1's aggregator
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_TRUE(m.aggregators[1].rejected_by_directory);
  EXPECT_FALSE(m.aggregators[0].rejected_by_directory);  // honest one fine
  EXPECT_TRUE(d.last_global_update().empty());
}

TEST(Protocol, WithoutVerifiabilityDropGoesUndetected) {
  // The motivation for Section IV: the same attack passes silently when
  // commitments are off.
  auto cfg = small_config();
  cfg.behaviors[0] = AggBehavior::kDropsGradients;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_EQ(m.rejected_updates, 0);
  EXPECT_FALSE(d.last_global_update().empty());
  // And the update is NOT the honest average (one gradient missing).
  const auto expected = expected_average(d, 0);
  const auto& got = d.last_global_update();
  double max_diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(got[i] - expected[i]));
  }
  EXPECT_GT(max_diff, 1e-3);
}

TEST(Protocol, PeersDetectMaliciousPartialAndCover) {
  // |A_i| = 2, one aggregator alters its partial: the honest peer must
  // reject it via the per-aggregator commitment and re-aggregate that
  // trainer set itself, producing the correct global update.
  auto cfg = small_config();
  cfg.num_trainers = 6;
  cfg.num_partitions = 1;
  cfg.aggs_per_partition = 2;
  cfg.options.verifiable = true;
  cfg.behaviors[1] = AggBehavior::kAltersGradients;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_GT(m.rejected_updates, 0);           // partial rejected by the peer
  EXPECT_TRUE(m.aggregators[0].covered_for_peer);
  expect_update_matches(d, 0);                // final update still honest
  for (const auto& t : m.trainers) EXPECT_FALSE(t.update_missing);
}

TEST(Protocol, OfflineAggregatorIsCoveredByPeer) {
  auto cfg = small_config();
  cfg.num_trainers = 6;
  cfg.num_partitions = 1;
  cfg.aggs_per_partition = 2;
  cfg.behaviors[1] = AggBehavior::kOffline;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_TRUE(m.aggregators[0].covered_for_peer);
  expect_update_matches(d, 0);
  for (const auto& t : m.trainers) EXPECT_FALSE(t.update_missing);
}

TEST(Protocol, AllAggregatorsOfflineFailsRoundGracefully) {
  auto cfg = small_config();
  cfg.num_partitions = 1;
  cfg.behaviors[0] = AggBehavior::kOffline;
  // Make deadlines short so the test completes quickly.
  cfg.schedule = Schedule{sim::from_seconds(10), sim::from_seconds(20), sim::from_millis(50)};
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_TRUE(d.last_global_update().empty());
  for (const auto& t : m.trainers) EXPECT_TRUE(t.update_missing);
}

TEST(Protocol, UploadDelayAndAggregationDelayArePositive) {
  Deployment d(small_config());
  const RoundMetrics m = d.run_round(0);
  EXPECT_GT(m.mean_upload_delay_s(), 0.0);
  EXPECT_GT(m.mean_aggregation_delay_s(), 0.0);
  EXPECT_GT(m.total_aggregation_delay_s(), 0.0);
  EXPECT_GE(m.total_aggregation_delay_s(), m.mean_aggregation_delay_s() - 1e-9);
}

TEST(Protocol, DirectoryStatsAccumulateLoad) {
  Deployment d(small_config());
  (void)d.run_round(0);
  const auto& stats = d.directory().stats();
  // 4 trainers x 2 partitions gradient announces + aggregator announces.
  EXPECT_GE(stats.announcements, 10u);
  EXPECT_GT(stats.polls, 0u);
  EXPECT_GT(stats.bytes_in, 0u);
}

TEST(Protocol, MoreProvidersReduceUploadDelay) {
  auto cfg1 = small_config();
  cfg1.num_trainers = 8;
  cfg1.num_partitions = 1;
  cfg1.partition_elements = 4096;
  cfg1.num_ipfs_nodes = 8;
  cfg1.providers_per_agg = 1;
  cfg1.options.merge_and_download = true;
  Deployment d1(cfg1);
  const double delay1 = d1.run_round(0).mean_upload_delay_s();

  auto cfg8 = cfg1;
  cfg8.providers_per_agg = 8;
  Deployment d8(cfg8);
  const double delay8 = d8.run_round(0).mean_upload_delay_s();

  EXPECT_LT(delay8, delay1 / 2.0);  // uploads parallelize across providers
}

TEST(Protocol, MoreAggregatorsReduceGatherDelay) {
  auto cfg1 = small_config();
  cfg1.num_trainers = 8;
  cfg1.num_partitions = 1;
  cfg1.partition_elements = 4096;
  cfg1.num_ipfs_nodes = 8;
  Deployment d1(cfg1);
  const double t1 = d1.run_round(0).mean_aggregation_delay_s();

  auto cfg2 = cfg1;
  cfg2.aggs_per_partition = 2;
  Deployment d2(cfg2);
  const double t2 = d2.run_round(0).mean_aggregation_delay_s();

  EXPECT_LT(t2, t1);  // each downloads half the gradients
}

TEST(Protocol, MultiRoundVerifiableMergeDeployment) {
  // The heaviest combination, run for several rounds on one timeline:
  // merge-and-download + verifiability + multi-aggregator sync.
  auto cfg = small_config();
  cfg.num_trainers = 6;
  cfg.aggs_per_partition = 2;
  cfg.options.merge_and_download = true;
  cfg.options.verifiable = true;
  cfg.providers_per_agg = 2;
  Deployment d(cfg);
  for (std::uint32_t iter = 0; iter < 3; ++iter) {
    const RoundMetrics m = d.run_round(iter);
    expect_round_complete(m);
    EXPECT_EQ(m.rejected_updates, 0) << "iter " << iter;
    expect_update_matches(d, iter);
  }
  EXPECT_EQ(d.directory().stats().verifications_failed, 0u);
}

TEST(Protocol, SecondCurveWorksEndToEnd) {
  auto cfg = small_config();
  cfg.options.verifiable = true;
  cfg.options.curve = crypto::CurveId::kSecp256r1;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  expect_round_complete(m);
  expect_update_matches(d, 0);
}

}  // namespace
}  // namespace dfl::core
