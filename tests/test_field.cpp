#include "crypto/mont.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "crypto/backend.hpp"
#include "crypto/curve.hpp"

namespace dfl::crypto {
namespace {

U256 random_mod(Rng& rng, const U256& m) {
  for (;;) {
    U256 v{rng.next(), rng.next(), rng.next(), rng.next()};
    if (v < m) return v;
  }
}

// Parameterized over both curve base fields and both scalar fields.
class FieldAxioms : public ::testing::TestWithParam<const FieldCtx*> {
 protected:
  const FieldCtx& f() const { return *GetParam(); }
};

TEST_P(FieldAxioms, ToFromMontRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const U256 x = random_mod(rng, f().modulus());
    EXPECT_EQ(f().from_mont(f().to_mont(x)), x);
  }
}

TEST_P(FieldAxioms, OneIsMultiplicativeIdentity) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().mul(a, f().one()), a);
    EXPECT_EQ(f().mul(f().one(), a), a);
  }
}

TEST_P(FieldAxioms, ZeroIsAdditiveIdentityAndAbsorbs) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().add(a, f().zero()), a);
    EXPECT_TRUE(f().is_zero(f().mul(a, f().zero())));
  }
}

TEST_P(FieldAxioms, AdditionCommutesAndAssociates) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    const Fe c = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().add(a, b), f().add(b, a));
    EXPECT_EQ(f().add(f().add(a, b), c), f().add(a, f().add(b, c)));
  }
}

TEST_P(FieldAxioms, MultiplicationCommutesAndAssociates) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    const Fe c = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().mul(a, b), f().mul(b, a));
    EXPECT_EQ(f().mul(f().mul(a, b), c), f().mul(a, f().mul(b, c)));
  }
}

TEST_P(FieldAxioms, Distributivity) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    const Fe c = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().mul(a, f().add(b, c)), f().add(f().mul(a, b), f().mul(a, c)));
  }
}

TEST_P(FieldAxioms, SubIsInverseOfAdd) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().sub(f().add(a, b), b), a);
  }
}

TEST_P(FieldAxioms, NegGivesAdditiveInverse) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_TRUE(f().is_zero(f().add(a, f().neg(a))));
  }
  EXPECT_TRUE(f().is_zero(f().neg(f().zero())));
}

TEST_P(FieldAxioms, InverseMultipliesToOne) {
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    U256 x = random_mod(rng, f().modulus());
    if (x.is_zero()) x = U256(1);
    const Fe a = f().to_mont(x);
    EXPECT_EQ(f().mul(a, f().inv(a)), f().one());
  }
}

TEST_P(FieldAxioms, InverseOfZeroThrows) {
  EXPECT_THROW((void)f().inv(f().zero()), std::domain_error);
}

TEST_P(FieldAxioms, PowMatchesRepeatedMul) {
  Rng rng(10);
  const Fe a = f().to_mont(random_mod(rng, f().modulus()));
  Fe expected = f().one();
  for (std::uint64_t e = 0; e <= 16; ++e) {
    EXPECT_EQ(f().pow(a, U256(e)), expected) << "exponent " << e;
    expected = f().mul(expected, a);
  }
}

TEST_P(FieldAxioms, FermatLittleTheorem) {
  // a^(p-1) == 1 for a != 0 (modulus is prime for all our fields).
  Rng rng(11);
  U256 e = f().modulus();
  e.sub_assign(U256(1));
  for (int i = 0; i < 5; ++i) {
    U256 x = random_mod(rng, f().modulus());
    if (x.is_zero()) x = U256(7);
    EXPECT_EQ(f().pow(f().to_mont(x), e), f().one());
  }
}

TEST_P(FieldAxioms, FromU64SmallConstants) {
  EXPECT_EQ(f().from_u64(0), f().zero());
  EXPECT_EQ(f().from_u64(1), f().one());
  EXPECT_EQ(f().add(f().from_u64(2), f().from_u64(3)), f().from_u64(5));
  EXPECT_EQ(f().mul(f().from_u64(6), f().from_u64(7)), f().from_u64(42));
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, FieldAxioms,
    ::testing::Values(&Curve::secp256k1().fp(), &Curve::secp256k1().fn(),
                      &Curve::secp256r1().fp(), &Curve::secp256r1().fn()),
    [](const ::testing::TestParamInfo<const FieldCtx*>& info) {
      switch (info.index) {
        case 0: return std::string("secp256k1_base");
        case 1: return std::string("secp256k1_scalar");
        case 2: return std::string("secp256r1_base");
        default: return std::string("secp256r1_scalar");
      }
    });

TEST(Field, SmallPrimeSanity) {
  // Cross-check Montgomery arithmetic against plain integers mod 2^61-1
  // (a Mersenne prime, odd, fits one limb).
  const U256 p((1ULL << 61) - 1);
  const FieldCtx f(p);
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.uniform((1ULL << 61) - 1);
    const std::uint64_t b = rng.uniform((1ULL << 61) - 1);
    const auto expected =
        static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % ((1ULL << 61) - 1));
    const U256 got = f.from_mont(f.mul(f.to_mont(U256(a)), f.to_mont(U256(b))));
    EXPECT_EQ(got, U256(expected));
  }
}

TEST(Field, EvenModulusRejected) {
  EXPECT_THROW(FieldCtx(U256(100)), std::invalid_argument);
}

// Reference implementation: (a * b) mod m via 512-bit product and binary
// long division. Slow but obviously correct; cross-checks Montgomery
// multiplication at full 256-bit width on the real curve moduli.
U256 reference_mulmod(const U256& a, const U256& b, const U256& m) {
  std::uint64_t wide[8];
  mul_wide(a, b, wide);
  // Binary long division over the 512-bit product, MSB first.
  U256 r{};
  for (int bit = 511; bit >= 0; --bit) {
    const std::uint64_t carry = r.shl1();
    const int limb = bit >> 6;
    if ((wide[limb] >> (bit & 63)) & 1) r.add_assign(U256(1));
    if (carry != 0 || r >= m) r.sub_assign(m);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Backend dispatch + batched-op differential coverage (crypto/backend.hpp).
// On an AVX2-capable host the kAvx2 table is the vector engine and these are
// true cross-implementation differential tests; on a scalar-only host the
// table silently falls back to scalar and the comparisons are tautological
// (the dispatch behavior itself is still exercised).

TEST(Backend, NamesAndScalarAlwaysUsable) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  EXPECT_TRUE(backend_compiled(Backend::kScalar));
  EXPECT_TRUE(backend_supported(Backend::kScalar));
  // Supported implies compiled.
  if (backend_supported(Backend::kAvx2)) {
    EXPECT_TRUE(backend_compiled(Backend::kAvx2));
  }
}

TEST(Backend, ActiveIsaIsConsistentWithActiveBackend) {
  const std::string isa = active_isa();
  EXPECT_TRUE(isa == "scalar" || isa == "avx2" || isa == "avx512ifma") << isa;
  if (active_backend() == Backend::kScalar) {
    EXPECT_EQ(isa, "scalar");
  } else {
    EXPECT_NE(isa, "scalar");
  }
}

TEST(Backend, OverrideForcesDispatchAndRestores) {
  const Backend automatic = active_backend();
  set_backend_override(Backend::kScalar);
  EXPECT_EQ(active_backend(), Backend::kScalar);
  EXPECT_STREQ(active_isa(), "scalar");
  set_backend_override(std::nullopt);
  EXPECT_EQ(active_backend(), automatic);
}

TEST(Backend, OverrideToUnsupportedBackendThrows) {
  if (backend_supported(Backend::kAvx2)) GTEST_SKIP() << "avx2 usable on this host";
  EXPECT_THROW(set_backend_override(Backend::kAvx2), std::invalid_argument);
}

class BackendDifferential : public ::testing::TestWithParam<const FieldCtx*> {
 protected:
  const FieldCtx& f() const { return *GetParam(); }

  // Locates the first mismatching element so a failure names the exact
  // input instead of drowning in 30k per-element expectations.
  static void expect_identical(const FieldCtx& f, const std::vector<Fe>& scalar,
                               const std::vector<Fe>& simd, const char* op) {
    ASSERT_EQ(scalar.size(), simd.size());
    if (std::memcmp(scalar.data(), simd.data(), scalar.size() * sizeof(Fe)) == 0) return;
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(scalar[i], simd[i]) << op << " diverges at index " << i << ": scalar="
                                    << f.from_mont(scalar[i]).to_hex() << " simd="
                                    << f.from_mont(simd[i]).to_hex();
    }
  }
};

TEST_P(BackendDifferential, BatchedOpsMatchScalarOnRandomInputs) {
  // 30k random cases per field x 4 field instantiations = 120k differential
  // cases for each of add/sub/mul/sqr, with the boundary values pinned at
  // the front of the batch.
  constexpr std::size_t kCases = 30'000;
  const FieldBatchOps& scalar_ops = field_batch_ops(Backend::kScalar);
  const FieldBatchOps& simd_ops = field_batch_ops(Backend::kAvx2);

  Rng rng(20240);
  U256 pm1 = f().modulus();
  pm1.sub_assign(U256(1));
  std::vector<Fe> a(kCases), b(kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    a[i] = f().to_mont(random_mod(rng, f().modulus()));
    b[i] = f().to_mont(random_mod(rng, f().modulus()));
  }
  a[0] = f().zero();
  b[0] = f().zero();
  a[1] = f().one();
  b[1] = f().to_mont(pm1);
  a[2] = f().to_mont(pm1);
  b[2] = f().to_mont(pm1);

  std::vector<Fe> out_s(kCases), out_v(kCases);
  scalar_ops.add(f(), a.data(), b.data(), out_s.data(), kCases);
  simd_ops.add(f(), a.data(), b.data(), out_v.data(), kCases);
  expect_identical(f(), out_s, out_v, "add");

  scalar_ops.sub(f(), a.data(), b.data(), out_s.data(), kCases);
  simd_ops.sub(f(), a.data(), b.data(), out_v.data(), kCases);
  expect_identical(f(), out_s, out_v, "sub");

  scalar_ops.mul(f(), a.data(), b.data(), out_s.data(), kCases);
  simd_ops.mul(f(), a.data(), b.data(), out_v.data(), kCases);
  expect_identical(f(), out_s, out_v, "mul");

  scalar_ops.sqr(f(), a.data(), out_s.data(), kCases);
  simd_ops.sqr(f(), a.data(), out_v.data(), kCases);
  expect_identical(f(), out_s, out_v, "sqr");
}

TEST_P(BackendDifferential, BatchedInverseMatchesScalarAndSelfChecks) {
  // Smaller batch: inv costs a field inversion per call plus three muls per
  // element, and every output is additionally verified to multiply back to
  // one. 8k x 4 fields = 32k inverse cases.
  constexpr std::size_t kCases = 8'000;
  const FieldBatchOps& scalar_ops = field_batch_ops(Backend::kScalar);
  const FieldBatchOps& simd_ops = field_batch_ops(Backend::kAvx2);

  Rng rng(20241);
  std::vector<Fe> a(kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    U256 x = random_mod(rng, f().modulus());
    if (x.is_zero()) x = U256(1);
    a[i] = f().to_mont(x);
  }
  a[0] = f().one();
  U256 pm1 = f().modulus();
  pm1.sub_assign(U256(1));
  a[1] = f().to_mont(pm1);

  std::vector<Fe> out_s(kCases), out_v(kCases);
  scalar_ops.inv(f(), a.data(), out_s.data(), kCases);
  simd_ops.inv(f(), a.data(), out_v.data(), kCases);
  expect_identical(f(), out_s, out_v, "inv");
  for (std::size_t i = 0; i < kCases; i += 997) {
    EXPECT_EQ(f().mul(a[i], out_s[i]), f().one()) << "index " << i;
  }
}

TEST_P(BackendDifferential, BatchedOpsSupportAliasedOutput) {
  constexpr std::size_t kCases = 257;  // deliberately not a vector multiple
  const FieldBatchOps& simd_ops = field_batch_ops(Backend::kAvx2);
  Rng rng(20242);
  std::vector<Fe> a(kCases), b(kCases), expected(kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    a[i] = f().to_mont(random_mod(rng, f().modulus()));
    b[i] = f().to_mont(random_mod(rng, f().modulus()));
    expected[i] = f().mul(a[i], b[i]);
  }
  std::vector<Fe> aliased = a;
  simd_ops.mul(f(), aliased.data(), b.data(), aliased.data(), kCases);
  expect_identical(f(), expected, aliased, "aliased mul");
}

TEST_P(BackendDifferential, BatchedInverseOfZeroThrowsInBothBackends) {
  std::vector<Fe> a(5, f().one());
  a[3] = f().zero();
  std::vector<Fe> out(5);
  EXPECT_THROW(field_batch_ops(Backend::kScalar).inv(f(), a.data(), out.data(), 5),
               std::domain_error);
  EXPECT_THROW(field_batch_ops(Backend::kAvx2).inv(f(), a.data(), out.data(), 5),
               std::domain_error);
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, BackendDifferential,
    ::testing::Values(&Curve::secp256k1().fp(), &Curve::secp256k1().fn(),
                      &Curve::secp256r1().fp(), &Curve::secp256r1().fn()),
    [](const ::testing::TestParamInfo<const FieldCtx*>& info) {
      switch (info.index) {
        case 0: return std::string("secp256k1_base");
        case 1: return std::string("secp256k1_scalar");
        case 2: return std::string("secp256r1_base");
        default: return std::string("secp256r1_scalar");
      }
    });

TEST(Field, MontgomeryMatchesReferenceMulmod) {
  Rng rng(77);
  for (const CurveId id : {CurveId::kSecp256k1, CurveId::kSecp256r1}) {
    const Curve& c = Curve::get(id);
    for (const FieldCtx* f : {&c.fp(), &c.fn()}) {
      for (int i = 0; i < 50; ++i) {
        const U256 a = random_mod(rng, f->modulus());
        const U256 b = random_mod(rng, f->modulus());
        const U256 expected = reference_mulmod(a, b, f->modulus());
        const U256 got = f->from_mont(f->mul(f->to_mont(a), f->to_mont(b)));
        ASSERT_EQ(got, expected) << "a=" << a.to_hex() << " b=" << b.to_hex();
      }
    }
  }
}

}  // namespace
}  // namespace dfl::crypto
