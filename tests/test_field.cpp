#include "crypto/mont.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/curve.hpp"

namespace dfl::crypto {
namespace {

U256 random_mod(Rng& rng, const U256& m) {
  for (;;) {
    U256 v{rng.next(), rng.next(), rng.next(), rng.next()};
    if (v < m) return v;
  }
}

// Parameterized over both curve base fields and both scalar fields.
class FieldAxioms : public ::testing::TestWithParam<const FieldCtx*> {
 protected:
  const FieldCtx& f() const { return *GetParam(); }
};

TEST_P(FieldAxioms, ToFromMontRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const U256 x = random_mod(rng, f().modulus());
    EXPECT_EQ(f().from_mont(f().to_mont(x)), x);
  }
}

TEST_P(FieldAxioms, OneIsMultiplicativeIdentity) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().mul(a, f().one()), a);
    EXPECT_EQ(f().mul(f().one(), a), a);
  }
}

TEST_P(FieldAxioms, ZeroIsAdditiveIdentityAndAbsorbs) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().add(a, f().zero()), a);
    EXPECT_TRUE(f().is_zero(f().mul(a, f().zero())));
  }
}

TEST_P(FieldAxioms, AdditionCommutesAndAssociates) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    const Fe c = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().add(a, b), f().add(b, a));
    EXPECT_EQ(f().add(f().add(a, b), c), f().add(a, f().add(b, c)));
  }
}

TEST_P(FieldAxioms, MultiplicationCommutesAndAssociates) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    const Fe c = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().mul(a, b), f().mul(b, a));
    EXPECT_EQ(f().mul(f().mul(a, b), c), f().mul(a, f().mul(b, c)));
  }
}

TEST_P(FieldAxioms, Distributivity) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    const Fe c = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().mul(a, f().add(b, c)), f().add(f().mul(a, b), f().mul(a, c)));
  }
}

TEST_P(FieldAxioms, SubIsInverseOfAdd) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    const Fe b = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_EQ(f().sub(f().add(a, b), b), a);
  }
}

TEST_P(FieldAxioms, NegGivesAdditiveInverse) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const Fe a = f().to_mont(random_mod(rng, f().modulus()));
    EXPECT_TRUE(f().is_zero(f().add(a, f().neg(a))));
  }
  EXPECT_TRUE(f().is_zero(f().neg(f().zero())));
}

TEST_P(FieldAxioms, InverseMultipliesToOne) {
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    U256 x = random_mod(rng, f().modulus());
    if (x.is_zero()) x = U256(1);
    const Fe a = f().to_mont(x);
    EXPECT_EQ(f().mul(a, f().inv(a)), f().one());
  }
}

TEST_P(FieldAxioms, InverseOfZeroThrows) {
  EXPECT_THROW((void)f().inv(f().zero()), std::domain_error);
}

TEST_P(FieldAxioms, PowMatchesRepeatedMul) {
  Rng rng(10);
  const Fe a = f().to_mont(random_mod(rng, f().modulus()));
  Fe expected = f().one();
  for (std::uint64_t e = 0; e <= 16; ++e) {
    EXPECT_EQ(f().pow(a, U256(e)), expected) << "exponent " << e;
    expected = f().mul(expected, a);
  }
}

TEST_P(FieldAxioms, FermatLittleTheorem) {
  // a^(p-1) == 1 for a != 0 (modulus is prime for all our fields).
  Rng rng(11);
  U256 e = f().modulus();
  e.sub_assign(U256(1));
  for (int i = 0; i < 5; ++i) {
    U256 x = random_mod(rng, f().modulus());
    if (x.is_zero()) x = U256(7);
    EXPECT_EQ(f().pow(f().to_mont(x), e), f().one());
  }
}

TEST_P(FieldAxioms, FromU64SmallConstants) {
  EXPECT_EQ(f().from_u64(0), f().zero());
  EXPECT_EQ(f().from_u64(1), f().one());
  EXPECT_EQ(f().add(f().from_u64(2), f().from_u64(3)), f().from_u64(5));
  EXPECT_EQ(f().mul(f().from_u64(6), f().from_u64(7)), f().from_u64(42));
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, FieldAxioms,
    ::testing::Values(&Curve::secp256k1().fp(), &Curve::secp256k1().fn(),
                      &Curve::secp256r1().fp(), &Curve::secp256r1().fn()),
    [](const ::testing::TestParamInfo<const FieldCtx*>& info) {
      switch (info.index) {
        case 0: return std::string("secp256k1_base");
        case 1: return std::string("secp256k1_scalar");
        case 2: return std::string("secp256r1_base");
        default: return std::string("secp256r1_scalar");
      }
    });

TEST(Field, SmallPrimeSanity) {
  // Cross-check Montgomery arithmetic against plain integers mod 2^61-1
  // (a Mersenne prime, odd, fits one limb).
  const U256 p((1ULL << 61) - 1);
  const FieldCtx f(p);
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.uniform((1ULL << 61) - 1);
    const std::uint64_t b = rng.uniform((1ULL << 61) - 1);
    const auto expected =
        static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % ((1ULL << 61) - 1));
    const U256 got = f.from_mont(f.mul(f.to_mont(U256(a)), f.to_mont(U256(b))));
    EXPECT_EQ(got, U256(expected));
  }
}

TEST(Field, EvenModulusRejected) {
  EXPECT_THROW(FieldCtx(U256(100)), std::invalid_argument);
}

// Reference implementation: (a * b) mod m via 512-bit product and binary
// long division. Slow but obviously correct; cross-checks Montgomery
// multiplication at full 256-bit width on the real curve moduli.
U256 reference_mulmod(const U256& a, const U256& b, const U256& m) {
  std::uint64_t wide[8];
  mul_wide(a, b, wide);
  // Binary long division over the 512-bit product, MSB first.
  U256 r{};
  for (int bit = 511; bit >= 0; --bit) {
    const std::uint64_t carry = r.shl1();
    const int limb = bit >> 6;
    if ((wide[limb] >> (bit & 63)) & 1) r.add_assign(U256(1));
    if (carry != 0 || r >= m) r.sub_assign(m);
  }
  return r;
}

TEST(Field, MontgomeryMatchesReferenceMulmod) {
  Rng rng(77);
  for (const CurveId id : {CurveId::kSecp256k1, CurveId::kSecp256r1}) {
    const Curve& c = Curve::get(id);
    for (const FieldCtx* f : {&c.fp(), &c.fn()}) {
      for (int i = 0; i < 50; ++i) {
        const U256 a = random_mod(rng, f->modulus());
        const U256 b = random_mod(rng, f->modulus());
        const U256 expected = reference_mulmod(a, b, f->modulus());
        const U256 got = f->from_mont(f->mul(f->to_mont(a), f->to_mont(b)));
        ASSERT_EQ(got, expected) << "a=" << a.to_hex() << " b=" << b.to_hex();
      }
    }
  }
}

}  // namespace
}  // namespace dfl::crypto
