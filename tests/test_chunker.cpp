// Chunked Merkle-DAG plane: Chunker/DagManifest edge cases, streaming
// PayloadMerger range consistency, DAG put/fetch bit-identity, striping
// and per-chunk failover, streaming merge_get, and end-to-end A/B
// equivalence of the chunked vs monolithic transfer planes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <numeric>

#include "core/payload.hpp"
#include "core/runner.hpp"
#include "ipfs/chunker.hpp"
#include "ipfs/node.hpp"
#include "ipfs/swarm.hpp"

namespace dfl::ipfs {
namespace {

Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

Bytes pattern_bytes(std::size_t n, std::uint8_t seed = 7) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i * 31 + (i >> 8));
  }
  return b;
}

TEST(Chunker, EmptyPayloadIsSingleEmptyDag) {
  const Chunker ck(256);
  const DagBlock dag = ck.build(Block(Bytes{}));
  EXPECT_EQ(dag.index.total_size, 0u);
  EXPECT_TRUE(dag.leaves.empty());
  EXPECT_EQ(dag.root, Cid::of(dag.manifest.view()));
  EXPECT_EQ(dag.reassemble().size(), 0u);
}

TEST(Chunker, SubChunkPayloadYieldsOneLeaf) {
  const Chunker ck(1024);
  const Bytes data = pattern_bytes(100);
  const DagBlock dag = ck.build(Block(data));
  ASSERT_EQ(dag.leaves.size(), 1u);
  EXPECT_EQ(dag.leaves[0].size(), 100u);
  EXPECT_EQ(to_bytes(dag.reassemble().view()), data);
}

TEST(Chunker, ExactMultipleHasNoRunt) {
  const Chunker ck(64);
  const DagBlock dag = ck.build(Block(pattern_bytes(64 * 4)));
  ASSERT_EQ(dag.leaves.size(), 4u);
  for (const Block& leaf : dag.leaves) EXPECT_EQ(leaf.size(), 64u);
}

TEST(Chunker, OneBytechunksRoundTrip) {
  const Chunker ck(1);
  const Bytes data = pattern_bytes(9);
  const DagBlock dag = ck.build(Block(data));
  ASSERT_EQ(dag.leaves.size(), 9u);
  EXPECT_EQ(to_bytes(dag.reassemble().view()), data);
}

TEST(Chunker, RootMatchesBuildAndIsChunkSizeBound) {
  const Bytes data = pattern_bytes(1000);
  const Chunker a(256);
  const Chunker b(512);
  EXPECT_EQ(a.root_cid(Block(data)), a.build(Block(data)).root);
  // Same bytes, different geometry => different root (the manifest
  // records the chunk size and the leaf set changes).
  EXPECT_NE(a.root_cid(Block(data)), b.root_cid(Block(data)));
  // Deterministic for the same geometry.
  EXPECT_EQ(b.root_cid(Block(data)), b.root_cid(Block(data)));
}

TEST(Chunker, ManifestEncodeDecodeRoundTrip) {
  const DagBlock dag = Chunker(128).build(Block(pattern_bytes(1000)));
  const auto decoded = DagManifest::decode(dag.manifest.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, dag.index);
}

TEST(Chunker, DecodeRejectsNonManifests) {
  EXPECT_FALSE(DagManifest::decode(BytesView(pattern_bytes(64))).has_value());
  EXPECT_FALSE(DagManifest::decode(BytesView(Bytes{})).has_value());
  // Truncated real manifest.
  const DagBlock dag = Chunker(128).build(Block(pattern_bytes(1000)));
  Bytes cut(dag.manifest.view().begin(), dag.manifest.view().end() - 5);
  EXPECT_FALSE(DagManifest::decode(BytesView(cut)).has_value());
}

TEST(Chunker, ReassembleRejectsMismatchedPieces) {
  const Chunker ck(64);
  const DagBlock dag = ck.build(Block(pattern_bytes(200)));
  std::vector<Block> wrong = dag.leaves;
  wrong.pop_back();
  EXPECT_THROW((void)Chunker::reassemble(dag.index, wrong), std::invalid_argument);
}

TEST(Chunker, LeafRangesTileTheContent) {
  const DagBlock dag = Chunker(96).build(Block(pattern_bytes(1000)));
  std::uint64_t expect_lo = 0;
  for (std::size_t i = 0; i < dag.index.leaf_count(); ++i) {
    const auto [lo, hi] = dag.index.leaf_range(i);
    EXPECT_EQ(lo, expect_lo);
    EXPECT_EQ(hi - lo, dag.leaves[i].size());
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, dag.index.total_size);
}

// --- streaming merger consistency ------------------------------------------

TEST(PayloadMergerStreaming, RangeMergeMatchesWholeMerge) {
  core::Payload a{{10, -3, 1 << 20, 7, 5}};
  core::Payload b{{-2, 9, 42, -1, 5}};
  const Bytes wa = a.serialize();
  const Bytes wb = b.serialize();
  const core::PayloadMerger merger;
  const Bytes whole = merger.merge({BytesView(wa), BytesView(wb)});

  const std::uint64_t total = wa.size();
  Bytes streamed;
  std::uint64_t from = 0;
  while (from < total) {
    // Advance one element at a time through the declared boundaries.
    const std::uint64_t to = merger.merge_boundary(from + 8, total);
    ASSERT_GT(to, from);
    const Bytes part = merger.merge_range({BytesView(wa), BytesView(wb)}, from, to);
    ASSERT_EQ(part.size(), to - from);
    streamed.insert(streamed.end(), part.begin(), part.end());
    from = to;
  }
  EXPECT_EQ(streamed, whole);
}

TEST(PayloadMergerStreaming, BoundaryRespectsHeaderAndTail) {
  const core::PayloadMerger merger;
  const std::uint64_t total = core::Payload::wire_size(3);  // 4 + 24
  EXPECT_EQ(merger.merge_boundary(0, total), 0u);
  EXPECT_EQ(merger.merge_boundary(3, total), 0u);    // inside the header
  EXPECT_EQ(merger.merge_boundary(11, total), 4u);   // header only
  EXPECT_EQ(merger.merge_boundary(12, total), 12u);  // header + one element
  EXPECT_EQ(merger.merge_boundary(total + 100, total), total);
}

// --- networked DAG plane ----------------------------------------------------

SwarmConfig dag_config(std::size_t chunk_size = 256) {
  SwarmConfig cfg{sim::from_millis(10), IpfsNodeConfig{}};
  cfg.node_config.chunking.mode = ChunkingMode::kDag;
  cfg.node_config.chunking.chunk_size = chunk_size;
  cfg.node_config.chunking.leaf_wait = sim::from_seconds(30);
  return cfg;
}

struct DagSwarmFixture : ::testing::Test {
  sim::Simulator sim;
  sim::Network net{sim};
  Swarm swarm{net, dag_config()};
  sim::Host& client = net.add_host("client", sim::HostConfig{10e6, 10e6, 0});

  template <typename T>
  T run(sim::Task<T> task, bool* threw = nullptr) {
    std::optional<T> out;
    sim.spawn([](sim::Task<T> t, std::optional<T>& o, bool* flag) -> sim::Task<void> {
      try {
        o = co_await std::move(t);
      } catch (const std::exception&) {
        if (flag != nullptr) *flag = true;
      }
    }(std::move(task), out, threw));
    sim.run();
    if (!out.has_value()) {
      if (threw != nullptr && *threw) return T{};
      throw std::runtime_error("task did not complete");
    }
    return *out;
  }
};

TEST_F(DagSwarmFixture, PutStoresManifestAndLeaves) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = pattern_bytes(1000);
  const Cid root = run(node.put(client, data));
  EXPECT_EQ(root, Chunker(256).root_cid(Block(data)));
  const auto manifest = node.dag_manifest(root);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->leaf_count(), 4u);
  for (const Cid& leaf : manifest->leaves) {
    EXPECT_TRUE(node.store().has(leaf));
    EXPECT_EQ(swarm.providers(leaf), std::vector<std::uint32_t>{0});
  }
  // The root provider record points at the manifest holder.
  EXPECT_EQ(swarm.providers(root), std::vector<std::uint32_t>{0});
}

TEST_F(DagSwarmFixture, FetchReassemblesBitIdentical) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = pattern_bytes(1500, 99);
  const Cid root = run(node.put(client, data));
  const Block got = run(swarm.fetch(client, root));
  EXPECT_EQ(to_bytes(got.view()), data);
}

TEST_F(DagSwarmFixture, FetchStripesAcrossProviders) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  (void)swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = pattern_bytes(2048, 3);
  const Cid root = run(n0.put(client, data));
  ASSERT_EQ(run(swarm.replicate(root, 2)), 2u);

  net.set_tracing(true);
  const Block got = run(swarm.fetch(client, root));
  EXPECT_EQ(to_bytes(got.view()), data);
  // Both replicas served at least one leaf of the striped fetch.
  std::set<std::uint32_t> served;
  for (const auto& rec : net.trace()) {
    if (rec.dag_leaf >= 0 && rec.to == client.id()) served.insert(rec.from);
  }
  EXPECT_TRUE(served.count(n0.host().id()) != 0);
  EXPECT_TRUE(served.count(swarm.node(1).host().id()) != 0);
}

TEST_F(DagSwarmFixture, FetchFailsOverPerChunk) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  IpfsNode& n1 = swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = pattern_bytes(2048, 11);
  const Cid root = run(n0.put(client, data));
  ASSERT_EQ(run(swarm.replicate(root, 2)), 2u);
  // Wipe half the leaves from n0: records still point there, but only n1
  // can serve them — the fetch must fail over per-chunk, not restart.
  const auto manifest = n0.dag_manifest(root);
  ASSERT_TRUE(manifest.has_value());
  for (std::size_t i = 0; i < manifest->leaf_count(); i += 2) {
    (void)n0.store().remove(manifest->leaves[i]);
  }
  RetryStats stats;
  const Block got = run(swarm.fetch(client, root, &stats));
  EXPECT_EQ(to_bytes(got.view()), data);
  EXPECT_GE(stats.failovers, 1u);
  (void)n1;
}

TEST_F(DagSwarmFixture, FetchPlainBlockUnderDagModeStillWorks) {
  // A block stored pre-chunking (put_local) has no manifest: the root block
  // IS the content and fetch must hand it over unchanged.
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = pattern_bytes(300, 42);
  const Cid cid = n0.put_local(data);
  EXPECT_EQ(to_bytes(run(swarm.fetch(client, cid)).view()), data);
}

TEST_F(DagSwarmFixture, StreamingMergeGetMatchesWholeBlockMerge) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  core::Payload a{{1, 2, 3, 1000, 1}};
  core::Payload b{{-1, 7, -3, 12, 1}};
  const Bytes wa = a.serialize();
  const Bytes wb = b.serialize();
  const Cid ca = run(node.put(client, wa));
  const Cid cb = run(node.put(client, wb));
  const core::PayloadMerger merger;
  const Block merged = run(node.merge_get(client, {ca, cb}, merger));
  EXPECT_EQ(to_bytes(merged.view()), merger.merge({BytesView(wa), BytesView(wb)}));
}

// --- end-to-end A/B equivalence --------------------------------------------

core::DeploymentConfig ab_config(ChunkingMode mode, std::size_t chunk_size) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 6;
  cfg.num_partitions = 2;
  cfg.partition_elements = 4096;  // ~32 KiB partitions: several leaves each
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 2;
  cfg.options.merge_and_download = true;
  cfg.options.chunking = mode;
  cfg.options.chunk_size = chunk_size;
  cfg.train_time = sim::from_millis(100);
  cfg.schedule =
      core::Schedule{sim::from_seconds(30), sim::from_seconds(60), sim::from_millis(50)};
  cfg.seed = 1234;
  return cfg;
}

std::vector<double> run_ab_round(ChunkingMode mode, std::size_t chunk_size,
                                 sim::TimeNs* round_done = nullptr) {
  core::Deployment d(ab_config(mode, chunk_size));
  const core::RoundMetrics m = d.run_round(0);
  for (const auto& t : m.trainers) {
    EXPECT_FALSE(t.aborted);
    EXPECT_FALSE(t.update_missing);
  }
  if (round_done != nullptr) *round_done = m.round_done;
  return d.last_global_update();
}

TEST(ChunkedPlaneAB, AggregatesBitIdenticalAcrossModes) {
  const auto mono = run_ab_round(ChunkingMode::kMonolithic, kDefaultChunkSize);
  const auto dag_8k = run_ab_round(ChunkingMode::kDag, 8 * 1024);
  const auto dag_2k = run_ab_round(ChunkingMode::kDag, 2 * 1024);
  ASSERT_FALSE(mono.empty());
  EXPECT_EQ(mono, dag_8k);  // exact double equality: bit-identical aggregates
  EXPECT_EQ(mono, dag_2k);  // chunk geometry must not leak into results
}

TEST(ChunkedPlaneAB, VerifiableDirectoryAcceptsDagAnnounces) {
  // A verifiable directory fetches every announced global update to check
  // it opens the accumulated commitment, so the DAG plane must not announce
  // a root before a copy is fetchable (no announce-before-upload overlap
  // for global updates in verifiable mode).
  auto run_verifiable = [](ChunkingMode mode) {
    auto cfg = ab_config(mode, 8 * 1024);
    cfg.options.verifiable = true;
    core::Deployment d(cfg);
    const core::RoundMetrics m = d.run_round(0);
    EXPECT_GE(m.round_done, 0) << "round never completed";
    EXPECT_EQ(m.rejected_updates, 0);
    return d.last_global_update();
  };
  const auto mono = run_verifiable(ChunkingMode::kMonolithic);
  const auto dag = run_verifiable(ChunkingMode::kDag);
  ASSERT_FALSE(mono.empty());
  EXPECT_EQ(mono, dag);
}

TEST(ChunkedPlaneAB, DagPlaneIsDeterministicAcrossReruns) {
  sim::TimeNs done_a = 0;
  sim::TimeNs done_b = 0;
  const auto a = run_ab_round(ChunkingMode::kDag, 8 * 1024, &done_a);
  const auto b = run_ab_round(ChunkingMode::kDag, 8 * 1024, &done_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(done_a, done_b);  // same simulated finish time, event for event
}

}  // namespace
}  // namespace dfl::ipfs
