#include "crypto/encoding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace dfl::crypto {
namespace {

TEST(Encoding, RoundTripExactForRepresentableValues) {
  // Values that are multiples of 2^-frac round-trip exactly.
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 123.0625, -4096.5}) {
    EXPECT_DOUBLE_EQ(decode_fixed(encode_fixed(v)), v);
  }
}

TEST(Encoding, QuantizationErrorBounded) {
  Rng rng(1);
  const double step = 1.0 / static_cast<double>(1 << kDefaultFracBits);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-100.0, 100.0);
    EXPECT_NEAR(decode_fixed(encode_fixed(v)), v, step / 2 + 1e-12);
  }
}

TEST(Encoding, SaturatesAtCap) {
  const std::int64_t cap = std::int64_t{1} << 40;
  EXPECT_EQ(encode_fixed(1e30), cap);
  EXPECT_EQ(encode_fixed(-1e30), -cap);
}

TEST(Encoding, CustomFracBits) {
  EXPECT_EQ(encode_fixed(1.5, 1), 3);
  EXPECT_EQ(encode_fixed(1.5, 0), 2);  // nearbyint: ties to even
  EXPECT_DOUBLE_EQ(decode_fixed(3, 1), 1.5);
}

TEST(Encoding, EncodeIsAdditiveOnRepresentables) {
  // Central protocol property: sums of encodings equal encoding of sums for
  // values already on the fixed-point grid, so homomorphic commitment
  // verification matches integer aggregation exactly.
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double a = decode_fixed(rng.uniform_int(-(1 << 24), 1 << 24));
    const double b = decode_fixed(rng.uniform_int(-(1 << 24), 1 << 24));
    EXPECT_EQ(encode_fixed(a) + encode_fixed(b), encode_fixed(a + b));
  }
}

TEST(Encoding, VectorHelpers) {
  const std::vector<double> v{0.5, -1.25, 3.0};
  const auto enc = encode_fixed_vec(v);
  ASSERT_EQ(enc.size(), 3u);
  const auto dec = decode_fixed_vec(enc);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(dec[i], v[i]);
}

TEST(Encoding, ToScalarNonNegative) {
  const Curve& c = Curve::secp256k1();
  EXPECT_EQ(to_scalar(0, c), U256(0));
  EXPECT_EQ(to_scalar(42, c), U256(42));
}

TEST(Encoding, ToScalarNegativeWrapsModOrder) {
  const Curve& c = Curve::secp256k1();
  const U256 s = to_scalar(-1, c);
  // s + 1 == n
  U256 t = s;
  t.add_assign(U256(1));
  EXPECT_EQ(t, c.order());
}

TEST(Encoding, ToScalarNegativeIsAdditiveInverse) {
  // In the scalar field: to_scalar(v) + to_scalar(-v) == 0 (mod n).
  const Curve& c = Curve::secp256r1();
  const FieldCtx& fn = c.fn();
  for (std::int64_t v : {1LL, 7LL, 123456789LL}) {
    const Fe a = fn.to_mont(to_scalar(v, c));
    const Fe b = fn.to_mont(to_scalar(-v, c));
    EXPECT_TRUE(fn.is_zero(fn.add(a, b)));
  }
}

TEST(Encoding, ToScalarsVector) {
  const Curve& c = Curve::secp256k1();
  const auto s = to_scalars({1, -1, 0}, c);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], U256(1));
  EXPECT_EQ(s[2], U256(0));
}

}  // namespace
}  // namespace dfl::crypto
