// Payload codec layer: dense identity, quantization round-trip + error
// bound + determinism, top-k selection semantics, decode-on-fold merging,
// and the typed-error contract for malformed encoded buffers.
#include "core/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/payload.hpp"

namespace dfl::core {
namespace {

/// A payload of `n` gradient elements plus the weight element, values
/// spread across positive/negative magnitudes up to `range`.
Payload random_payload(std::size_t n, std::int64_t range, std::uint64_t seed) {
  Rng rng(seed);
  Payload p;
  p.values.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto mag = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(range)));
    p.values.push_back(rng.uniform(2) == 0 ? mag : -mag);
  }
  p.values.push_back(1);  // weight
  return p;
}

TEST(CodecDense, EncodeIsByteIdenticalToSerialize) {
  const Payload p = random_payload(64, 1 << 20, 7);
  EncodeStats st;
  const Bytes wire = encode_payload(p, CodecConfig{Codec::kDense}, 123, &st);
  EXPECT_EQ(wire, p.serialize());
  EXPECT_EQ(st.raw_bytes, st.encoded_bytes);
  EXPECT_EQ(st.error_sq, 0.0);
  EXPECT_EQ(decode_payload(wire, CodecConfig{Codec::kDense}), p);
  EXPECT_EQ(reconstruct_payload(p, CodecConfig{Codec::kDense}, 123), p);
}

TEST(CodecQuant, RoundTripWithinErrorBound) {
  for (const int bits : {2, 4, 8, 12, 16}) {
    CodecConfig cfg{Codec::kQuant, bits};
    const Payload p = random_payload(256, std::int64_t{1} << 30, 11);
    const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
    std::int64_t scale = 0;
    for (std::size_t i = 0; i + 1 < p.values.size(); ++i) {
      scale = std::max(scale, std::abs(p.values[i]));
    }
    EncodeStats st;
    const Bytes wire = encode_payload(p, cfg, 42, &st);
    const Payload back = decode_payload(wire, cfg);
    ASSERT_EQ(back.values.size(), p.values.size());
    EXPECT_EQ(back.weight(), p.weight()) << "weight must survive exactly";
    // Per-element quantization error is bounded by one quantization step
    // (scale / qmax ≈ 2^{1-bits}·range) plus one dequantization rounding.
    const double step = static_cast<double>(scale) / static_cast<double>(qmax) + 1.0;
    double error_sq = 0;
    for (std::size_t i = 0; i + 1 < p.values.size(); ++i) {
      const double err = static_cast<double>(back.values[i] - p.values[i]);
      EXPECT_LE(std::abs(err), step) << "bits=" << bits << " i=" << i;
      error_sq += err * err;
    }
    // EncodeStats reports the same reconstruction error the receiver sees.
    EXPECT_DOUBLE_EQ(st.error_sq, error_sq);
    EXPECT_EQ(st.raw_bytes, p.serialized_size());
    EXPECT_EQ(st.encoded_bytes, wire.size());
  }
}

TEST(CodecQuant, CompresssesAtExpectedRatio) {
  const std::size_t n = 4096;
  const Payload p = random_payload(n, 1 << 24, 3);
  for (const int bits : {4, 8}) {
    const Bytes wire = encode_payload(p, CodecConfig{Codec::kQuant, bits}, 1);
    // 8 bytes/element dense vs bits/8 bytes/element + fixed header: the
    // asymptotic ratio is 64/bits.
    const double ratio =
        static_cast<double>(p.serialized_size()) / static_cast<double>(wire.size());
    EXPECT_GT(ratio, 64.0 / bits * 0.9) << "bits=" << bits;
  }
}

TEST(CodecQuant, StochasticRoundingIsSeedDeterministic) {
  CodecConfig cfg{Codec::kQuant, 8};
  const Payload p = random_payload(512, 1 << 22, 5);
  EXPECT_EQ(encode_payload(p, cfg, 99), encode_payload(p, cfg, 99));
  EXPECT_NE(encode_payload(p, cfg, 99), encode_payload(p, cfg, 100))
      << "different seeds should round differently on a payload this large";
}

TEST(CodecQuant, AllZeroGradientRoundTrips) {
  Payload p;
  p.values = {0, 0, 0, 5};  // zero gradient, weight 5
  CodecConfig cfg{Codec::kQuant, 8};
  const Payload back = decode_payload(encode_payload(p, cfg, 1), cfg);
  EXPECT_EQ(back, p);
}

TEST(CodecQuant, ExtremeMagnitudesSurvive) {
  // INT64_MIN-adjacent values exercise the __int128 quantizer paths.
  Payload p;
  p.values = {INT64_MAX, INT64_MIN + 1, 0, 1};
  CodecConfig cfg{Codec::kQuant, 8};
  const Payload back = decode_payload(encode_payload(p, cfg, 1), cfg);
  const std::int64_t qmax = 127;
  const double step = static_cast<double>(INT64_MAX) / static_cast<double>(qmax) + 1.0;
  for (std::size_t i = 0; i + 1 < p.values.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<double>(back.values[i] - p.values[i])), step);
  }
}

TEST(CodecTopK, KeepsLargestMagnitudesExactly) {
  Payload p;
  p.values = {100, -900, 3, 800, -2, 50, 0, 7, 1};  // 8 elements + weight
  CodecConfig cfg{Codec::kTopK, 8, 0.25};           // keep ceil(0.25·8) = 2
  EncodeStats st;
  const Bytes wire = encode_payload(p, cfg, 0, &st);
  const Payload back = decode_payload(wire, cfg);
  ASSERT_EQ(back.values.size(), p.values.size());
  // -900 and 800 survive verbatim; everything else decodes to zero.
  EXPECT_EQ(back.values[1], -900);
  EXPECT_EQ(back.values[3], 800);
  for (const std::size_t i : {0u, 2u, 4u, 5u, 6u, 7u}) EXPECT_EQ(back.values[i], 0);
  EXPECT_EQ(back.weight(), 1);
  // error_sq = sum of squares of the dropped elements.
  double dropped = 0;
  for (const std::size_t i : {0u, 2u, 4u, 5u, 6u, 7u}) {
    dropped += static_cast<double>(p.values[i]) * static_cast<double>(p.values[i]);
  }
  EXPECT_DOUBLE_EQ(st.error_sq, dropped);
}

TEST(CodecTopK, EncodedSizeDependsOnlyOnShape) {
  // The streaming merger requires equal totals across trainers: the wire
  // size must be a function of (n, frac) alone, not of the values.
  CodecConfig cfg{Codec::kTopK, 8, 0.1};
  const Bytes a = encode_payload(random_payload(333, 1 << 20, 1), cfg, 0);
  const Bytes b = encode_payload(random_payload(333, 1 << 4, 2), cfg, 0);
  EXPECT_EQ(a.size(), b.size());
}

TEST(CodecTopK, DeterministicUnderTies) {
  Payload p;
  p.values = {5, 5, 5, 5, 1};  // all tied: index order breaks ties
  CodecConfig cfg{Codec::kTopK, 8, 0.5};  // keep 2
  const Payload back = decode_payload(encode_payload(p, cfg, 0), cfg);
  EXPECT_EQ(back.values, (std::vector<std::int64_t>{5, 5, 0, 0, 1}));
  EXPECT_EQ(encode_payload(p, cfg, 0), encode_payload(p, cfg, 7))
      << "topk ignores the rounding seed";
}

TEST(CodecTopK, FullFractionIsLossless) {
  const Payload p = random_payload(100, 1 << 16, 9);
  CodecConfig cfg{Codec::kTopK, 8, 1.0};
  EncodeStats st;
  const Payload back = decode_payload(encode_payload(p, cfg, 0, &st), cfg);
  EXPECT_EQ(back, p);
  EXPECT_EQ(st.error_sq, 0.0);
}

TEST(CodecMerger, DecodeOnFoldMatchesReconstructionSum) {
  CodecConfig cfg{Codec::kQuant, 8};
  const Payload a = random_payload(64, 1 << 20, 21);
  const Payload b = random_payload(64, 1 << 20, 22);
  const Bytes wa = encode_payload(a, cfg, 1);
  const Bytes wb = encode_payload(b, cfg, 2);
  const PayloadMerger merger(cfg);
  const Payload merged = Payload::deserialize(
      merger.merge({BytesView(wa), BytesView(wb)}));
  const Payload expect =
      Payload::add(decode_payload(wa, cfg), decode_payload(wb, cfg));
  EXPECT_EQ(merged, expect);
  EXPECT_EQ(merged.weight(), a.weight() + b.weight());
}

TEST(CodecMerger, EncodedBoundaryIsWholeBlockOnly) {
  const PayloadMerger merger(CodecConfig{Codec::kQuant, 8});
  EXPECT_EQ(merger.merge_boundary(100, 1000), 0u);
  EXPECT_EQ(merger.merge_boundary(999, 1000), 0u);
  EXPECT_EQ(merger.merge_boundary(1000, 1000), 1000u);
  EXPECT_EQ(merger.merge_boundary(5000, 1000), 1000u);
}

TEST(CodecMerger, EncodedRangeMergeMatchesWholeMerge) {
  CodecConfig cfg{Codec::kTopK, 8, 0.5};
  const Payload a = random_payload(32, 1 << 12, 31);
  const Payload b = random_payload(32, 1 << 12, 32);
  const Bytes wa = encode_payload(a, cfg, 0);
  const Bytes wb = encode_payload(b, cfg, 0);
  ASSERT_EQ(wa.size(), wb.size());
  const PayloadMerger merger(cfg);
  const std::vector<BytesView> parts{BytesView(wa), BytesView(wb)};
  EXPECT_EQ(merger.merge_range(parts, 0, wa.size()), merger.merge(parts));
  EXPECT_THROW((void)merger.merge_range(parts, 8, wa.size()), std::logic_error);
}

TEST(CodecErrors, RejectsBadParameters) {
  const Payload p = random_payload(8, 100, 1);
  EXPECT_THROW((void)encode_payload(p, CodecConfig{Codec::kQuant, 1}, 0), CodecError);
  EXPECT_THROW((void)encode_payload(p, CodecConfig{Codec::kQuant, 17}, 0), CodecError);
  EXPECT_THROW((void)encode_payload(p, CodecConfig{Codec::kTopK, 8, 0.0}, 0), CodecError);
  EXPECT_THROW((void)encode_payload(p, CodecConfig{Codec::kTopK, 8, 1.5}, 0), CodecError);
  EXPECT_THROW((void)encode_payload(Payload{}, CodecConfig{Codec::kQuant, 8}, 0), CodecError);
}

TEST(CodecErrors, RejectsMalformedBuffers) {
  CodecConfig quant{Codec::kQuant, 8};
  CodecConfig topk{Codec::kTopK, 8, 0.5};
  const Payload p = random_payload(16, 1 << 10, 1);
  Bytes wq = encode_payload(p, quant, 0);
  Bytes wt = encode_payload(p, topk, 0);

  // Wrong magic: a dense buffer fed to a lossy decoder, and vice versa.
  EXPECT_THROW((void)decode_payload(p.serialize(), quant), CodecError);
  EXPECT_THROW((void)decode_payload(wq, topk), CodecError);
  EXPECT_THROW((void)decode_payload(wt, quant), CodecError);

  // Truncation at any depth surfaces as CodecError, never a short read.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{10},
                                wq.size() - 1}) {
    EXPECT_THROW((void)decode_payload(BytesView(wq.data(), cut), quant), CodecError);
  }
  EXPECT_THROW((void)decode_payload(BytesView(wt.data(), wt.size() - 1), topk), CodecError);

  // Trailing garbage is rejected, not ignored.
  wq.push_back(0);
  EXPECT_THROW((void)decode_payload(wq, quant), CodecError);
  wt.push_back(0);
  EXPECT_THROW((void)decode_payload(wt, topk), CodecError);

  // Bits mismatch between sender and receiver config.
  wq.pop_back();
  EXPECT_THROW((void)decode_payload(wq, CodecConfig{Codec::kQuant, 4}), CodecError);
  // Kept-count mismatch when the receiver expects a different fraction.
  wt.pop_back();
  EXPECT_THROW((void)decode_payload(wt, CodecConfig{Codec::kTopK, 8, 0.25}), CodecError);
}

TEST(CodecSeed, DistinctPerUploadIdentity) {
  const std::uint64_t base = codec_seed(1, 2, 3);
  EXPECT_EQ(base, codec_seed(1, 2, 3));
  EXPECT_NE(base, codec_seed(2, 2, 3));
  EXPECT_NE(base, codec_seed(1, 3, 3));
  EXPECT_NE(base, codec_seed(1, 2, 4));
}

}  // namespace
}  // namespace dfl::core
