#include "core/task_spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dfl::core {
namespace {

TEST(TaskSpecTest, PartitionRangesCoverAllParams) {
  const TaskSpec spec(103, 4, 8);  // deliberately non-divisible
  EXPECT_EQ(spec.num_partitions(), 4u);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    const auto [first, last] = spec.partition_range(p);
    EXPECT_EQ(first, prev_end);  // contiguous
    EXPECT_GT(last, first);
    covered += last - first;
    prev_end = last;
  }
  EXPECT_EQ(covered, 103u);
  EXPECT_EQ(spec.max_partition_size(), 26u);
}

TEST(TaskSpecTest, EqualPartitionsWhenDivisible) {
  const TaskSpec spec(100, 4, 8);
  for (std::size_t p = 0; p < 4; ++p) EXPECT_EQ(spec.partition_size(p), 25u);
}

TEST(TaskSpecTest, RejectsDegenerateShapes) {
  EXPECT_THROW(TaskSpec(10, 0, 4), std::invalid_argument);
  EXPECT_THROW(TaskSpec(3, 4, 4), std::invalid_argument);
}

TEST(TaskSpecTest, RoundRobinPartitionsTrainerSets) {
  TaskSpec spec(64, 2, 10);
  spec.build_round_robin(/*aggs_per_partition=*/3, /*providers_per_agg=*/2, /*num_nodes=*/4);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& pa = spec.assignment(p);
    ASSERT_EQ(pa.aggregators.size(), 3u);
    // Every trainer appears in exactly one T_ij (the paper's invariant).
    std::set<std::uint32_t> all;
    std::size_t total = 0;
    for (const auto& ts : pa.trainers) {
      all.insert(ts.begin(), ts.end());
      total += ts.size();
    }
    EXPECT_EQ(all.size(), 10u);
    EXPECT_EQ(total, 10u);
    // Every aggregator has the requested provider count.
    for (const auto& provs : pa.providers) {
      EXPECT_EQ(provs.size(), 2u);
      for (const auto node : provs) EXPECT_LT(node, 4u);
    }
  }
}

TEST(TaskSpecTest, AggregatorIdsAreGloballyUnique) {
  TaskSpec spec(64, 4, 8);
  spec.build_round_robin(2, 1, 4);
  std::set<std::uint32_t> ids;
  for (std::size_t p = 0; p < 4; ++p) {
    for (const auto a : spec.assignment(p).aggregators) ids.insert(a);
  }
  EXPECT_EQ(ids.size(), 8u);  // 4 partitions x 2 slots
}

TEST(TaskSpecTest, AggregatorOfAndProviderForAreConsistent) {
  TaskSpec spec(64, 1, 6);
  spec.build_round_robin(2, 2, 8);
  const auto& pa = spec.assignment(0);
  for (std::uint32_t t = 0; t < 6; ++t) {
    const std::uint32_t slot = spec.aggregator_of(0, t);
    const auto& ts = pa.trainers.at(slot);
    EXPECT_NE(std::find(ts.begin(), ts.end(), t), ts.end());
    const std::uint32_t node = spec.provider_for(0, t);
    const auto& provs = pa.providers.at(slot);
    EXPECT_NE(std::find(provs.begin(), provs.end(), node), provs.end());
  }
  EXPECT_THROW((void)spec.aggregator_of(0, 99), std::out_of_range);
}

TEST(TaskSpecTest, ProvidersSpreadAcrossNodes) {
  TaskSpec spec(64, 1, 16);
  spec.build_round_robin(1, 4, 8);
  const auto& provs = spec.assignment(0).providers[0];
  const std::set<std::uint32_t> unique(provs.begin(), provs.end());
  EXPECT_EQ(unique.size(), 4u);  // distinct nodes while the pool allows
}

TEST(TaskSpecTest, BuildRejectsZeroSizes) {
  TaskSpec spec(64, 1, 4);
  EXPECT_THROW(spec.build_round_robin(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(spec.build_round_robin(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(spec.build_round_robin(1, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dfl::core
