#include "crypto/u256.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dfl::crypto {
namespace {

U256 random_u256(Rng& rng) {
  return U256{rng.next(), rng.next(), rng.next(), rng.next()};
}

TEST(U256, ZeroAndParity) {
  EXPECT_TRUE(U256{}.is_zero());
  EXPECT_FALSE(U256(1).is_zero());
  EXPECT_TRUE(U256(1).is_odd());
  EXPECT_FALSE(U256(2).is_odd());
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256{}.bit_length(), 0);
  EXPECT_EQ(U256(1).bit_length(), 1);
  EXPECT_EQ(U256(0xff).bit_length(), 8);
  EXPECT_EQ((U256{0, 1, 0, 0}).bit_length(), 65);
  EXPECT_EQ((U256{0, 0, 0, 1ULL << 63}).bit_length(), 256);
}

TEST(U256, BitAccess) {
  const U256 v{0b1010, 0, 1, 0};
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_TRUE(v.bit(128));
  EXPECT_FALSE(v.bit(129));
}

TEST(U256, BitsWindowAcrossLimbBoundary) {
  // Set bits 62..66 to 1: limb0 top two bits, limb1 bottom three bits.
  const U256 v{0xc000000000000000ULL, 0x7, 0, 0};
  EXPECT_EQ(v.bits(62, 5), 0b11111u);
  EXPECT_EQ(v.bits(61, 5), 0b11110u);
  EXPECT_EQ(v.bits(63, 5), 0b01111u);
  EXPECT_EQ(v.bits(300, 5), 0u);  // beyond 256 reads as zero
}

TEST(U256, Compare) {
  const U256 a(5);
  const U256 b{0, 1, 0, 0};  // 2^64
  EXPECT_LT(a.cmp(b), 0);
  EXPECT_GT(b.cmp(a), 0);
  EXPECT_EQ(a.cmp(U256(5)), 0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b >= a);
}

TEST(U256, AddCarryPropagation) {
  U256 a{~0ULL, ~0ULL, ~0ULL, 0};
  EXPECT_EQ(a.add_assign(U256(1)), 0u);
  EXPECT_EQ(a, (U256{0, 0, 0, 1}));
}

TEST(U256, AddOverflowReturnsCarry) {
  U256 a{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  EXPECT_EQ(a.add_assign(U256(1)), 1u);
  EXPECT_TRUE(a.is_zero());
}

TEST(U256, SubBorrowPropagation) {
  U256 a{0, 0, 0, 1};
  EXPECT_EQ(a.sub_assign(U256(1)), 0u);
  EXPECT_EQ(a, (U256{~0ULL, ~0ULL, ~0ULL, 0}));
}

TEST(U256, SubUnderflowReturnsBorrow) {
  U256 a{};
  EXPECT_EQ(a.sub_assign(U256(1)), 1u);
  EXPECT_EQ(a, (U256{~0ULL, ~0ULL, ~0ULL, ~0ULL}));
}

TEST(U256, AddSubRoundTripRandom) {
  Rng rng(101);
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    U256 s = a;
    const auto carry = s.add_assign(b);
    U256 back = s;
    const auto borrow = back.sub_assign(b);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // overflow in add implies wraparound in sub
  }
}

TEST(U256, ShiftRoundTrip) {
  Rng rng(102);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    a.limb[3] &= ~(1ULL << 63);  // clear top bit so shl1 is lossless
    U256 b = a;
    EXPECT_EQ(b.shl1(), 0u);
    b.shr1();
    EXPECT_EQ(b, a);
  }
}

TEST(U256, MulWideSmallValues) {
  std::uint64_t out[8];
  mul_wide(U256(7), U256(6), out);
  EXPECT_EQ(out[0], 42u);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(out[i], 0u);
}

TEST(U256, MulWideMaxValues) {
  // (2^256 - 1)^2 = 2^512 - 2^257 + 1
  const U256 max{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  std::uint64_t out[8];
  mul_wide(max, max, out);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 0u);
  EXPECT_EQ(out[2], 0u);
  EXPECT_EQ(out[3], 0u);
  EXPECT_EQ(out[4], ~0ULL - 1);
  EXPECT_EQ(out[5], ~0ULL);
  EXPECT_EQ(out[6], ~0ULL);
  EXPECT_EQ(out[7], ~0ULL);
}

TEST(U256, MulWideCommutes) {
  Rng rng(103);
  for (int i = 0; i < 100; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    std::uint64_t ab[8], ba[8];
    mul_wide(a, b, ab);
    mul_wide(b, a, ba);
    for (int k = 0; k < 8; ++k) EXPECT_EQ(ab[k], ba[k]);
  }
}

TEST(U256, BytesRoundTrip) {
  Rng rng(104);
  for (int i = 0; i < 100; ++i) {
    const U256 a = random_u256(rng);
    EXPECT_EQ(U256::from_be_bytes(a.to_be_bytes()), a);
  }
}

TEST(U256, BytesBigEndianLayout) {
  const U256 v(0x0102);
  const Bytes b = v.to_be_bytes();
  ASSERT_EQ(b.size(), 32u);
  EXPECT_EQ(b[30], 0x01);
  EXPECT_EQ(b[31], 0x02);
  EXPECT_EQ(b[0], 0x00);
}

TEST(U256, FromBeBytesShortInput) {
  const Bytes b{0x01, 0x02};
  EXPECT_EQ(U256::from_be_bytes(b), U256(0x0102));
}

TEST(U256, FromBeBytesTooLongThrows) {
  EXPECT_THROW(U256::from_be_bytes(Bytes(33, 0)), std::invalid_argument);
}

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex("deadbeef00000000000000000000000000000000000000000000000012345678");
  EXPECT_EQ(v.limb[0], 0x12345678u);
  EXPECT_EQ(v.limb[3], 0xdeadbeef00000000ULL);
  EXPECT_EQ(v.to_hex(), "deadbeef00000000000000000000000000000000000000000000000012345678");
}

TEST(U256, HexOddLengthPadsLeft) {
  EXPECT_EQ(U256::from_hex("f"), U256(0xf));
  EXPECT_EQ(U256::from_hex("0x123"), U256(0x123));
}

TEST(U256, AddModWrapsCorrectly) {
  const U256 m(97);
  EXPECT_EQ(add_mod(U256(50), U256(60), m), U256(13));
  EXPECT_EQ(add_mod(U256(0), U256(0), m), U256(0));
  EXPECT_EQ(add_mod(U256(96), U256(1), m), U256(0));
}

TEST(U256, SubModWrapsCorrectly) {
  const U256 m(97);
  EXPECT_EQ(sub_mod(U256(10), U256(20), m), U256(87));
  EXPECT_EQ(sub_mod(U256(20), U256(10), m), U256(10));
  EXPECT_EQ(sub_mod(U256(0), U256(1), m), U256(96));
}

TEST(U256, AddModNearFullWidthModulus) {
  // Modulus just below 2^256: the carry-out path must be exercised.
  U256 m{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  m.sub_assign(U256(4));  // m = 2^256 - 5
  U256 a = m;
  a.sub_assign(U256(1));  // a = m - 1
  // (m-1) + 2 = m + 1 ≡ 1 (mod m)
  EXPECT_EQ(add_mod(a, U256(2), m), U256(1));
}

}  // namespace
}  // namespace dfl::crypto
