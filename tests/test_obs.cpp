#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace dfl::obs {
namespace {

// The tracer is a process-wide singleton; every test starts from a clean,
// disabled state and leaves it that way so ordering cannot matter.
struct TracerFixture : ::testing::Test {
  void SetUp() override {
    Tracer::instance().clear();
    set_tracing(true);
  }
  void TearDown() override {
    set_tracing(false);
    Tracer::instance().clear();
    (void)take_ambient_span();  // never leak ambient context across tests
  }
};

TEST_F(TracerFixture, DisabledBeginReturnsInertToken) {
  set_tracing(false);
  SpanToken t = Tracer::instance().begin("round", 0, 0);
  EXPECT_FALSE(t);
  EXPECT_EQ(t.id, 0u);
  // Inert tokens make every downstream call a no-op, so call sites never
  // need their own guards.
  Tracer::instance().attr(t, "k", std::int64_t{1});
  Tracer::instance().end(t, 10);
  EXPECT_EQ(Tracer::instance().span_count(), 0u);
}

TEST_F(TracerFixture, BeginEndAttrRoundTrip) {
  SpanToken t = Tracer::instance().begin("upload", 3, 100, /*parent=*/0);
  ASSERT_TRUE(t);
  Tracer::instance().attr(t, "bytes", std::int64_t{4096});
  Tracer::instance().attr(t, "mode", std::string("dag"));
  Tracer::instance().end(t, 250);

  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const Span& s = snap.spans[0];
  EXPECT_STREQ(s.name, "upload");
  EXPECT_EQ(s.track, 3u);
  EXPECT_EQ(s.start_ns, 100);
  EXPECT_EQ(s.end_ns, 250);
  EXPECT_EQ(s.parent, 0u);
  ASSERT_EQ(s.attrs.size(), 2u);
  EXPECT_STREQ(s.attrs[0].key, "bytes");
  EXPECT_TRUE(s.attrs[0].is_num);
  EXPECT_EQ(s.attrs[0].num, 4096);
  EXPECT_STREQ(s.attrs[1].key, "mode");
  EXPECT_FALSE(s.attrs[1].is_num);
  EXPECT_EQ(s.attrs[1].str, "dag");
}

TEST_F(TracerFixture, ParentLinksAreRecorded) {
  SpanToken outer = Tracer::instance().begin("round", 0, 0);
  SpanToken inner = Tracer::instance().begin("train", 0, 10, outer.id);
  Tracer::instance().end(inner, 20);
  Tracer::instance().end(outer, 30);

  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  // Same track, ordered by start time.
  EXPECT_EQ(snap.spans[0].parent, 0u);
  EXPECT_EQ(snap.spans[1].parent, snap.spans[0].id);
}

TEST_F(TracerFixture, SpanIdsAreNonZeroAndUnique) {
  SpanToken a = Tracer::instance().begin("a", 0, 0);
  SpanToken b = Tracer::instance().begin("b", 0, 0);
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(b.id, 0u);
  EXPECT_NE(a.id, b.id);
}

TEST_F(TracerFixture, IdsNeverRepeatAcrossClear) {
  SpanToken a = Tracer::instance().begin("a", 0, 0);
  const SpanId before = a.id;
  Tracer::instance().clear();
  SpanToken b = Tracer::instance().begin("b", 0, 0);
  // The per-thread index survives clear() so old ids can never collide
  // with new spans (stale tokens must not resolve).
  EXPECT_GT(b.id, before);
}

TEST_F(TracerFixture, StaleTokenAfterClearIsIgnored) {
  SpanToken t = Tracer::instance().begin("a", 0, 0);
  Tracer::instance().clear();
  SpanToken fresh = Tracer::instance().begin("b", 0, 5);
  // The stale token aliases the fresh span's storage index but carries the
  // old id, so end/attr must not corrupt the fresh span.
  Tracer::instance().end(t, 99);
  Tracer::instance().attr(t, "stale", std::int64_t{1});
  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].id, fresh.id);
  EXPECT_EQ(snap.spans[0].end_ns, -1);
  EXPECT_TRUE(snap.spans[0].attrs.empty());
}

TEST_F(TracerFixture, SnapshotOrdersByClockTrackStart) {
  // Recorded deliberately out of order.
  SpanToken w = Tracer::instance().begin_wall("commit");
  Tracer::instance().end_wall(w);
  SpanToken t2 = Tracer::instance().begin("late", 2, 500);
  SpanToken t1 = Tracer::instance().begin("early", 2, 100);
  SpanToken t0 = Tracer::instance().begin("other_track", 1, 900);
  Tracer::instance().end(t2, 600);
  Tracer::instance().end(t1, 200);
  Tracer::instance().end(t0, 950);

  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.spans.size(), 4u);
  EXPECT_STREQ(snap.spans[0].name, "other_track");  // sim clock, track 1
  EXPECT_STREQ(snap.spans[1].name, "early");        // track 2, start 100
  EXPECT_STREQ(snap.spans[2].name, "late");         // track 2, start 500
  EXPECT_STREQ(snap.spans[3].name, "commit");       // wall clock sorts last
  EXPECT_EQ(snap.spans[3].clock, SpanClock::kWall);
  EXPECT_GE(snap.spans[3].track, kWallTrackBase);
  // begin_wall self-registers a default name for its thread's wall track.
  EXPECT_EQ(snap.tracks.count(snap.spans[3].track), 1u);
}

TEST_F(TracerFixture, TrackNamesSurviveClear) {
  Tracer::instance().set_track_name(7, "trainer-7");
  Tracer::instance().clear();
  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.tracks.count(7u), 1u);
  EXPECT_EQ(snap.tracks.at(7u), "trainer-7");
}

TEST_F(TracerFixture, AmbientSpanIsConsumeOnce) {
  set_ambient_span(42);
  EXPECT_EQ(take_ambient_span(), 42u);
  // The first take cleared it: a second consumer sees "no span", so
  // context can never bleed across suspension points.
  EXPECT_EQ(take_ambient_span(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Registry, CounterGaugeHistogramRoundTrip) {
  Registry reg;
  reg.counter("dfl.test.hits").add(3);
  reg.counter("dfl.test.hits").add(2);  // same name → same metric
  reg.gauge("dfl.test.ratio").set(0.5);
  reg.histogram("dfl.test.lat_ms").record(10);
  reg.histogram("dfl.test.lat_ms").record(1000);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("dfl.test.hits", 0), 5u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("dfl.test.ratio", -1), 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].first, "dfl.test.lat_ms");
  EXPECT_EQ(snap.histograms[0].second.count, 2u);
  EXPECT_EQ(snap.histograms[0].second.sum, 1010u);
  EXPECT_EQ(snap.histograms[0].second.min, 10u);
  // Log-bucket recording: max is exact only below the unit-bucket range,
  // so allow the documented 12.5% relative error.
  EXPECT_GE(snap.histograms[0].second.max, 1000u);
  EXPECT_LE(snap.histograms[0].second.max, 1125u);
}

TEST(Registry, LookupFallbacksWhenAbsent) {
  Registry reg;
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("missing", 17), 17u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("missing", 2.5), 2.5);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(1);
  reg.counter("m.middle").add(1);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "m.middle");
  EXPECT_EQ(snap.counters[2].first, "z.last");
}

TEST(Registry, CollectorsRunAtSnapshotTime) {
  Registry reg;
  int runs = 0;
  reg.register_collector("ext", [&](Registry& r) {
    ++runs;
    // Mirrors an externally maintained stats struct into the registry —
    // the pattern DataPathStats / EngineStats / RetryStats use.
    r.counter("ext.total").set(static_cast<std::uint64_t>(runs) * 10);
  });
  EXPECT_EQ(runs, 0);  // registration alone does nothing
  EXPECT_EQ(reg.snapshot().counter_or("ext.total", 0), 10u);
  EXPECT_EQ(reg.snapshot().counter_or("ext.total", 0), 20u);
  EXPECT_EQ(runs, 2);

  // Replacing by name supersedes; unregistering stops updates but the
  // last published value remains visible.
  reg.register_collector("ext", [](Registry& r) { r.counter("ext.total").set(99); });
  EXPECT_EQ(reg.snapshot().counter_or("ext.total", 0), 99u);
  reg.unregister_collector("ext");
  EXPECT_EQ(reg.snapshot().counter_or("ext.total", 0), 99u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Export, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Export, PerfettoDocumentStructure) {
  Tracer::Snapshot snap;
  snap.tracks[3] = "trainer-3";
  Span round;
  round.id = 1;
  round.name = "round";
  round.track = 3;
  round.start_ns = 1'000'000;
  round.end_ns = 5'000'000;
  snap.spans.push_back(round);
  Span train;
  train.id = 2;
  train.parent = 1;
  train.name = "train";
  train.track = 3;
  train.start_ns = 1'500'000;
  train.end_ns = 2'500'000;  // nests inside round → same lane
  snap.spans.push_back(train);

  WireSlice wire;
  wire.id = 11;
  wire.parent = 2;
  wire.track = 3;
  wire.name = "chunk_xfer";
  wire.issued_ns = 1'600'000;
  wire.start_ns = 1'700'000;
  wire.end_ns = 2'000'000;
  std::ostringstream os;
  write_perfetto(os, snap, {wire});
  const std::string doc = os.str();

  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Track metadata, span slices with causal args, and the wire slice.
  EXPECT_NE(doc.find("trainer-3"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"round\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"train\""), std::string::npos);
  EXPECT_NE(doc.find("\"span_id\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"parent_span\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"chunk_xfer\""), std::string::npos);
  EXPECT_NE(doc.find("\"transfer_id\":11"), std::string::npos);
  // Flow arrow from the issuing span to the wire slice, both directions.
  EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(doc.find("\"bp\":\"e\""), std::string::npos);
  // Timestamps are µs: 1'000'000 ns → 1000 µs.
  EXPECT_NE(doc.find("\"ts\":1000"), std::string::npos);
}

TEST(Export, PerfettoSplitsOverlappingSpansIntoLanes) {
  Tracer::Snapshot snap;
  // Two spans on one track that overlap without nesting — the exporter
  // must put them on different tids (lanes), not emit a malformed stack.
  for (int i = 0; i < 2; ++i) {
    Span s;
    s.id = static_cast<SpanId>(i + 1);
    s.name = i == 0 ? "first" : "second";
    s.track = 5;
    s.start_ns = 1000 + i * 500;
    s.end_ns = 2000 + i * 500;
    snap.spans.push_back(s);
  }
  std::ostringstream os;
  write_perfetto(os, snap, {});
  const std::string doc = os.str();
  // The unnamed track gets a second lane ("track-5 #2") because the two
  // slices neither nest nor are disjoint.
  EXPECT_NE(doc.find("track-5"), std::string::npos);
  EXPECT_NE(doc.find("track-5 #2"), std::string::npos);
}

TEST(Export, MetricsJsonlOneObjectPerLine) {
  Registry reg;
  reg.counter("dfl.rounds_total").add(2);
  reg.gauge("dfl.copy_reduction").set(3.5);
  reg.histogram("dfl.lat").record(7);
  std::ostringstream os;
  write_metrics_jsonl(os, reg.snapshot(), {{"round", 1}});
  const std::string line = os.str();

  // Exactly one line, ending in a newline.
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
  EXPECT_NE(line.find("\"round\":1"), std::string::npos);
  EXPECT_NE(line.find("\"dfl.rounds_total\":2"), std::string::npos);
  EXPECT_NE(line.find("\"dfl.copy_reduction\":3.5"), std::string::npos);
  EXPECT_NE(line.find("\"dfl.lat\""), std::string::npos);
  EXPECT_NE(line.find("\"count\":1"), std::string::npos);
}

TEST_F(TracerFixture, SpanCapDropsAndCounts) {
  Tracer& t = Tracer::instance();
  t.set_span_limit(2);
  SpanToken a = t.begin("round", 0, 0);
  SpanToken b = t.begin("train", 0, 1);
  SpanToken c = t.begin("upload", 0, 2);  // past the cap
  SpanToken d = t.begin("gather", 0, 3);
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_FALSE(c);
  EXPECT_FALSE(d);
  EXPECT_EQ(t.span_count(), 2u);
  EXPECT_EQ(t.dropped_spans(), 2u);
  EXPECT_EQ(t.snapshot().dropped_spans, 2u);
  // Dropped tokens are inert: attr/end on them never crash or record.
  t.attr(c, "k", std::int64_t{1});
  t.end(c, 9);
  // clear() resets both the recorded count and the drop counter, so the
  // next run starts with full budget and a clean bill of health.
  t.clear();
  EXPECT_EQ(t.dropped_spans(), 0u);
  EXPECT_TRUE(t.begin("round", 0, 0));
  t.set_span_limit(kDefaultSpanLimit);
}

TEST_F(TracerFixture, MakeInstantCollapsesSpanKeepingAttrs) {
  Tracer& t = Tracer::instance();
  SpanToken tok = t.begin("slo_breach", kProcessTrack, 500);
  t.attr(tok, "slo", std::string("round_p99_ms_max"));
  t.attr(tok, "actual_x1000", std::int64_t{78000});
  t.make_instant(tok);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_TRUE(snap.spans[0].instant);
  EXPECT_EQ(snap.spans[0].start_ns, 500);
  EXPECT_EQ(snap.spans[0].end_ns, 500);
  ASSERT_EQ(snap.spans[0].attrs.size(), 2u);
  EXPECT_STREQ(snap.spans[0].attrs[0].key, "slo");
}

TEST_F(TracerFixture, PerfettoOtherDataCarriesTruncationCounters) {
  Tracer& t = Tracer::instance();
  t.set_span_limit(1);
  (void)t.begin("round", 0, 0);
  (void)t.begin("train", 0, 1);  // dropped
  std::ostringstream os;
  write_perfetto(os, t.snapshot(), {}, /*dropped_wires=*/3);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"otherData\""), std::string::npos);
  EXPECT_NE(doc.find("\"dropped_spans\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped_wires\":3"), std::string::npos);
  t.set_span_limit(kDefaultSpanLimit);
}

TEST(TimeSeries, SamplesCarryDeltasAndQuantiles) {
  Registry reg;
  reg.counter("dfl.rounds_total").add(2);
  reg.gauge("dfl.sim.shards").set(2);
  for (std::uint64_t v = 1; v <= 100; ++v) reg.histogram("dfl.round.duration_ms").record(v);
  std::ostringstream os;
  TimeSeriesWriter w(os, reg);
  w.sample(5'000'000'000);  // t = 5 s
  reg.counter("dfl.rounds_total").add(3);
  w.sample(10'000'000'000);
  EXPECT_EQ(w.samples(), 2u);

  std::istringstream lines(os.str());
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_NE(first.find("\"t_ms\":5000"), std::string::npos);
  EXPECT_NE(first.find("\"sample\":0"), std::string::npos);
  // First window's delta is the absolute value (prev = 0).
  EXPECT_NE(first.find("\"dfl.rounds_total\":2"), std::string::npos);
  EXPECT_NE(first.find("\"p50\":"), std::string::npos);
  EXPECT_NE(second.find("\"t_ms\":10000"), std::string::npos);
  // Second window saw 3 more: counters show 5 absolute, deltas show 3.
  EXPECT_NE(second.find("\"dfl.rounds_total\":5"), std::string::npos);
  EXPECT_NE(second.find("\"dfl.rounds_total\":3"), std::string::npos);
  EXPECT_NE(second.find("\"dfl.sim.shards\":2"), std::string::npos);
}

TEST(TimeSeries, PrometheusExpositionShape) {
  Registry reg;
  reg.counter("dfl.slo.breaches_total").add(4);
  reg.gauge("dfl.sim.shards").set(2);
  reg.histogram("dfl.round.duration_ms").record(10);
  std::ostringstream os;
  write_prometheus(os, reg.snapshot());
  const std::string doc = os.str();
  // Names are sanitized to the Prometheus charset (dots become _).
  EXPECT_NE(doc.find("# TYPE dfl_slo_breaches_total counter"), std::string::npos);
  EXPECT_NE(doc.find("dfl_slo_breaches_total 4"), std::string::npos);
  EXPECT_NE(doc.find("# TYPE dfl_sim_shards gauge"), std::string::npos);
  EXPECT_NE(doc.find("# TYPE dfl_round_duration_ms summary"), std::string::npos);
  EXPECT_NE(doc.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(doc.find("dfl_round_duration_ms_count 1"), std::string::npos);
  EXPECT_EQ(doc.find("dfl.round"), std::string::npos);  // no raw dots leak
}

}  // namespace
}  // namespace dfl::obs
