#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dfl::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(from_seconds(3.0), [&] { order.push_back(3); });
  s.schedule_at(from_seconds(1.0), [&] { order.push_back(1); });
  s.schedule_at(from_seconds(2.0), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), from_seconds(3.0));
}

TEST(Simulator, TiesBreakFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  s.schedule_at(1000, [] {});
  s.run();
  bool ran = false;
  s.schedule_at(5, [&] { ran = true; });  // in the past
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 1000);  // clock never goes backwards
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(10, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.run_until(from_seconds(5));
  EXPECT_EQ(s.now(), from_seconds(5));
}

TEST(Simulator, MaxEventsGuard) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_after(1, forever); };
  s.schedule_at(0, forever);
  s.run(100);
  EXPECT_EQ(s.events_processed(), 100u);
}

TEST(Simulator, TimeConversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_millis(2.5), 2'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'000'000'000), 2.0);
}

Task<void> sleeper(Simulator& s, TimeNs d, std::vector<TimeNs>& log) {
  co_await s.sleep(d);
  log.push_back(s.now());
  co_await s.sleep(d);
  log.push_back(s.now());
}

TEST(SimulatorCoro, SleepAdvancesClock) {
  Simulator s;
  std::vector<TimeNs> log;
  s.spawn(sleeper(s, 100, log));
  s.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{100, 200}));
}

TEST(SimulatorCoro, ZeroAndNegativeSleepCompletes) {
  Simulator s;
  std::vector<TimeNs> log;
  s.spawn(sleeper(s, 0, log));
  s.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{0, 0}));
}

Task<int> answer(Simulator& s) {
  co_await s.sleep(10);
  co_return 42;
}

Task<void> awaits_child(Simulator& s, int& out) {
  out = co_await answer(s);
}

TEST(SimulatorCoro, ChildTaskReturnsValue) {
  Simulator s;
  int out = 0;
  s.spawn(awaits_child(s, out));
  s.run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(s.now(), 10);
}

Task<int> thrower(Simulator& s) {
  co_await s.sleep(5);
  throw std::runtime_error("boom");
}

Task<void> catches_child(Simulator& s, bool& caught) {
  try {
    (void)co_await thrower(s);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(SimulatorCoro, ExceptionPropagatesToAwaiter) {
  Simulator s;
  bool caught = false;
  s.spawn(catches_child(s, caught));
  s.run();
  EXPECT_TRUE(caught);
}

Task<void> chained(Simulator& s, int depth, int& leaf_count) {
  if (depth == 0) {
    ++leaf_count;
    co_return;
  }
  co_await chained(s, depth - 1, leaf_count);
  co_await chained(s, depth - 1, leaf_count);
}

TEST(SimulatorCoro, DeepTaskChains) {
  Simulator s;
  int leaves = 0;
  s.spawn(chained(s, 10, leaves));
  s.run();
  EXPECT_EQ(leaves, 1024);
}

TEST(SimulatorCoro, ManyConcurrentProcesses) {
  Simulator s;
  std::vector<TimeNs> log;
  for (int i = 0; i < 100; ++i) s.spawn(sleeper(s, (i + 1) * 10, log));
  s.run();
  EXPECT_EQ(log.size(), 200u);
  // Log must be sorted (each process finishes in time order).
  EXPECT_TRUE(std::is_sorted(log.begin(), log.end()));
}

Task<void> wait_event(SyncEvent& ev, Simulator& s, std::vector<TimeNs>& log) {
  co_await ev.wait();
  log.push_back(s.now());
}

TEST(SyncEventTest, BroadcastWakesAllWaiters) {
  Simulator s;
  SyncEvent ev(s);
  std::vector<TimeNs> log;
  for (int i = 0; i < 5; ++i) s.spawn(wait_event(ev, s, log));
  s.schedule_at(500, [&] { ev.set(); });
  s.run();
  ASSERT_EQ(log.size(), 5u);
  for (TimeNs t : log) EXPECT_EQ(t, 500);
}

TEST(SyncEventTest, WaitAfterSetCompletesImmediately) {
  Simulator s;
  SyncEvent ev(s);
  ev.set();
  std::vector<TimeNs> log;
  s.schedule_at(100, [&] { s.spawn(wait_event(ev, s, log)); });
  s.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 100);
}

TEST(SyncEventTest, ClearRearmsEvent) {
  Simulator s;
  SyncEvent ev(s);
  ev.set();
  EXPECT_TRUE(ev.is_set());
  ev.clear();
  EXPECT_FALSE(ev.is_set());
}

Task<void> consume(Channel<int>& ch, std::vector<int>& out, int n) {
  for (int i = 0; i < n; ++i) {
    out.push_back(co_await ch.receive());
  }
}

TEST(ChannelTest, DeliversInFifoOrder) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<int> out;
  s.spawn(consume(ch, out, 3));
  s.schedule_at(10, [&] { ch.send(1); });
  s.schedule_at(20, [&] {
    ch.send(2);
    ch.send(3);
  });
  s.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ChannelTest, ReceiveBeforeSendParks) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<int> out;
  s.spawn(consume(ch, out, 1));
  s.run();
  EXPECT_TRUE(out.empty());  // parked, no sender — simulation drained
  ch.send(9);
  s.run();
  EXPECT_EQ(out, std::vector<int>{9});
}

TEST(ChannelTest, BufferedSendsConsumedLater) {
  Simulator s;
  Channel<int> ch(s);
  for (int i = 0; i < 5; ++i) ch.send(i);
  EXPECT_EQ(ch.size(), 5u);
  std::vector<int> out;
  s.spawn(consume(ch, out, 5));
  s.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ch.empty());
}

TEST(Simulator, ResetDropsPendingWork) {
  Simulator s;
  int fired = 0;
  s.schedule_at(100, [&] { ++fired; });
  s.reset();
  s.run();
  EXPECT_EQ(fired, 0);
}

// ---- Window-calendar bucket queue (the sharded engine's queue mode) ----

// Regression: equal-timestamp events must preserve scheduling order in
// *both* queue modes, including after reset() and a re-run. The binary
// heap is not stable by itself — the (at, seq) key is what guarantees
// this, and the bucket queue must reproduce it exactly.
TEST(SimulatorBuckets, TiesBreakFifoInBothModesAcrossReset) {
  for (const bool buckets : {false, true}) {
    Simulator s;
    if (buckets) s.enable_window_buckets(50);
    for (int run = 0; run < 2; ++run) {
      std::vector<int> order;
      const TimeNs t = s.now() + 100;
      for (int i = 0; i < 10; ++i) {
        s.schedule_at(t, [&order, i] { order.push_back(i); });
      }
      s.run();
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i)
            << "buckets=" << buckets << " run=" << run;
      }
      s.reset();  // second pass: seq counter and ring must re-arm cleanly
    }
  }
}

TEST(SimulatorBuckets, MatchesHeapOrderOnMixedTimestamps) {
  // Same pseudo-random workload through both queues, including handlers
  // that schedule into their own executing window; the execution orders
  // must be identical.
  auto drive = [](Simulator& s) {
    std::vector<std::uint64_t> order;
    std::uint64_t x = 42;
    for (int i = 0; i < 200; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const TimeNs at = static_cast<TimeNs>(x % 10000);
      s.schedule_at(at, [&s, &order, i, at] {
        order.push_back(static_cast<std::uint64_t>(i));
        if (i % 3 == 0) {
          // Same-window and next-window nested scheduling.
          s.schedule_at(at + 1, [&order, i] { order.push_back(1000u + i); });
          s.schedule_at(at + 777, [&order, i] { order.push_back(2000u + i); });
        }
      });
    }
    s.run();
    return order;
  };
  Simulator heap;
  Simulator bucket;
  bucket.enable_window_buckets(256);
  EXPECT_EQ(drive(heap), drive(bucket));
}

TEST(SimulatorBuckets, MigrationPreservesPendingOrder) {
  // Enabling (or re-sizing) buckets with events already queued must keep
  // the total order, heap -> buckets and buckets -> wider buckets.
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    s.schedule_at(100 * (i % 3), [&order, i] { order.push_back(i); });
  }
  s.enable_window_buckets(64);   // heap -> buckets mid-flight
  s.enable_window_buckets(512);  // re-bucket to a wider window
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 4, 2, 5}));
}

TEST(SimulatorBuckets, RunUntilAndRunBeforeRespectBoundaries) {
  Simulator s;
  s.enable_window_buckets(100);
  int ran = 0;
  s.schedule_at(100, [&] { ++ran; });
  s.schedule_at(200, [&] { ++ran; });
  s.schedule_at(201, [&] { ++ran; });
  s.run_before(200);  // half-open: the t=200 event stays queued
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.next_event_time(), 200);
  s.run_until(200);  // inclusive
  EXPECT_EQ(ran, 2);
  s.run();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(s.next_event_time(), Simulator::kNoEvent);
}

TEST(SimulatorBuckets, FarFutureEventsOverflowAndComeBack) {
  // Events beyond the 1024-bucket ring horizon park in the far heap and
  // must still run in order once the ring advances to them.
  Simulator s;
  s.enable_window_buckets(10);
  std::vector<int> order;
  s.schedule_at(10 * Simulator::kRingBuckets * 3, [&order] { order.push_back(2); });
  s.schedule_at(5, [&order] { order.push_back(1); });
  s.schedule_at(10 * Simulator::kRingBuckets * 7, [&order] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.events_processed(), 3u);
}

TEST(SimulatorBuckets, ZeroWidthRejectedWithNamedField) {
  Simulator s;
  try {
    s.enable_window_buckets(0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bucket_width"), std::string::npos);
  }
}

}  // namespace
}  // namespace dfl::sim
