// Seeded chaos sweeps: whole FL rounds under scheduled storage-node churn,
// transfer faults and payload corruption. The protocol must (a) survive —
// rounds complete without throwing, (b) stay correct — the aggregate the
// directory publishes matches the fault-free run, and (c) stay
// deterministic — identical (config, plan, seed) reproduces bit-identical
// metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/runner.hpp"
#include "crypto/encoding.hpp"

namespace dfl::core {
namespace {

DeploymentConfig chaos_config() {
  DeploymentConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_partitions = 2;
  cfg.partition_elements = 32;
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = 4;
  // Two providers per aggregator: partition 0 stores on nodes {0,1},
  // partition 1 on {2,3} (round-robin), so crashing {1,2} takes out one
  // replica of each partition while a live copy survives.
  cfg.providers_per_agg = 2;
  cfg.options.gradient_replicas = 2;
  cfg.options.update_replicas = 2;
  // Fast retries so chaos rounds converge quickly in simulated time.
  cfg.options.retry.max_attempts = 6;
  cfg.options.retry.attempt_timeout = sim::from_seconds(10);
  cfg.options.retry.base_backoff = sim::from_millis(100);
  cfg.options.retry.max_backoff = sim::from_seconds(2);
  cfg.schedule = Schedule{sim::from_seconds(60), sim::from_seconds(120), sim::from_millis(50)};
  cfg.train_time = sim::from_millis(200);
  return cfg;
}

/// Crash the given storage nodes (host ids = node ids) at `at`, restarting
/// `restart_after` later (0 = never). Rounds of chaos_config complete in
/// roughly a second of simulated time, so `at` must be a few hundred ms to
/// land mid-round.
sim::FaultPlan crash_nodes(const std::vector<std::uint32_t>& ids, sim::TimeNs at,
                           sim::TimeNs restart_after) {
  sim::FaultPlan plan;
  for (const std::uint32_t id : ids) {
    plan.crashes.push_back(
        sim::CrashWindow{id, at, restart_after > 0 ? at + restart_after : at});
  }
  return plan;
}

std::vector<double> run_rounds(const DeploymentConfig& cfg, int rounds,
                               std::vector<RoundMetrics>* out = nullptr) {
  Deployment d(cfg);
  std::vector<double> last;
  for (int r = 0; r < rounds; ++r) {
    RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    if (!d.last_global_update().empty()) last = d.last_global_update();
    if (out != nullptr) out->push_back(std::move(m));
  }
  return last;
}

void expect_trainer_records_identical(const RoundMetrics& a, const RoundMetrics& b) {
  ASSERT_EQ(a.trainers.size(), b.trainers.size());
  for (std::size_t i = 0; i < a.trainers.size(); ++i) {
    const TrainerRecord& x = a.trainers[i];
    const TrainerRecord& y = b.trainers[i];
    EXPECT_EQ(x.model_ready_at, y.model_ready_at) << "trainer " << i;
    EXPECT_EQ(x.uploads, y.uploads) << "trainer " << i;
    EXPECT_EQ(x.update_missing, y.update_missing) << "trainer " << i;
    EXPECT_EQ(x.rpc, y.rpc) << "trainer " << i;
  }
}

void expect_aggregator_records_identical(const RoundMetrics& a, const RoundMetrics& b) {
  ASSERT_EQ(a.aggregators.size(), b.aggregators.size());
  for (std::size_t i = 0; i < a.aggregators.size(); ++i) {
    const AggregatorRecord& x = a.aggregators[i];
    const AggregatorRecord& y = b.aggregators[i];
    EXPECT_EQ(x.gather_done_at, y.gather_done_at) << "aggregator " << i;
    EXPECT_EQ(x.sync_done_at, y.sync_done_at) << "aggregator " << i;
    EXPECT_EQ(x.global_written_at, y.global_written_at) << "aggregator " << i;
    EXPECT_EQ(x.bytes_received, y.bytes_received) << "aggregator " << i;
    EXPECT_EQ(x.merge_fallbacks, y.merge_fallbacks) << "aggregator " << i;
    EXPECT_EQ(x.rpc, y.rpc) << "aggregator " << i;
  }
}

TEST(Chaos, RoundSurvivesHalfTheStorageNodesCrashingMidRound) {
  // 2 of 4 storage nodes crash 300 ms into the round (mid-aggregation) and
  // never come back. Replicas on the surviving nodes must carry the round.
  auto cfg = chaos_config();
  cfg.fault_plan = crash_nodes({1, 2}, sim::from_millis(300), 0);

  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  ASSERT_FALSE(d.last_global_update().empty());
  for (const auto& t : m.trainers) {
    EXPECT_FALSE(t.aborted);
    EXPECT_FALSE(t.update_missing);
  }
  const auto* inj = d.fault_injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->stats().crashes, 2u);
  EXPECT_EQ(inj->stats().restarts, 0u);
}

TEST(Chaos, ChurnedRunMatchesFaultFreeModel) {
  // The protocol is exact (encoded-integer sums): a run under churn that
  // completes must publish the same global update as the fault-free run —
  // not merely close, identical to the last bit of the decoded average.
  auto cfg = chaos_config();
  const auto clean = run_rounds(cfg, 2);
  ASSERT_FALSE(clean.empty());

  auto chaotic_cfg = chaos_config();
  chaotic_cfg.fault_plan = crash_nodes({1, 2}, sim::from_millis(300), sim::from_seconds(3));
  const auto chaotic = run_rounds(chaotic_cfg, 2);
  ASSERT_EQ(chaotic.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(chaotic[i], clean[i]) << "element " << i;
  }
}

TEST(Chaos, RetryCountersAreConsistentWithThePlan) {
  // Faults leave fingerprints: a run with crashes must show retries or
  // failovers; a fault-free run must show none.
  auto clean_cfg = chaos_config();
  std::vector<RoundMetrics> clean_rounds;
  (void)run_rounds(clean_cfg, 1, &clean_rounds);
  const ipfs::RetryStats clean = clean_rounds.at(0).rpc_totals();
  EXPECT_EQ(clean.retries, 0u);
  EXPECT_EQ(clean.timeouts, 0u);
  EXPECT_GT(clean.attempts, 0u);  // every RPC counts one attempt

  auto chaos_cfg = chaos_config();
  chaos_cfg.fault_plan = crash_nodes({1, 2}, sim::from_millis(300), sim::from_seconds(3));
  std::vector<RoundMetrics> chaos_rounds;
  (void)run_rounds(chaos_cfg, 1, &chaos_rounds);
  const ipfs::RetryStats stressed = chaos_rounds.at(0).rpc_totals();
  EXPECT_GT(stressed.attempts, clean.attempts);
  EXPECT_GT(stressed.retries + stressed.failovers, 0u);
}

TEST(Chaos, IdenticalPlanAndSeedGiveBitIdenticalMetrics) {
  auto cfg = chaos_config();
  cfg.fault_plan = sim::FaultPlan::periodic_churn(
      {0, 1, 2, 3}, sim::from_seconds(240), sim::from_seconds(40), sim::from_seconds(15),
      0.5, 99);
  cfg.fault_plan.transfer_failure_prob = 0.05;

  std::vector<RoundMetrics> a_rounds, b_rounds;
  const auto a = run_rounds(cfg, 2, &a_rounds);
  const auto b = run_rounds(cfg, 2, &b_rounds);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  ASSERT_EQ(a_rounds.size(), b_rounds.size());
  for (std::size_t r = 0; r < a_rounds.size(); ++r) {
    EXPECT_EQ(a_rounds[r].round_done, b_rounds[r].round_done) << "round " << r;
    EXPECT_EQ(a_rounds[r].rpc_totals(), b_rounds[r].rpc_totals()) << "round " << r;
    expect_trainer_records_identical(a_rounds[r], b_rounds[r]);
    expect_aggregator_records_identical(a_rounds[r], b_rounds[r]);
  }
}

TEST(Chaos, VerifiableModeSurvivesChurnAndCorruption) {
  // Verifiable aggregation under churn + corrupted blocks: corruption is
  // caught by CID re-verification (a retry), never by the commitment layer
  // (which would reject the round), and the published update stays exact.
  auto cfg = chaos_config();
  cfg.options.verifiable = true;
  const auto clean = run_rounds(cfg, 1);
  ASSERT_FALSE(clean.empty());

  auto chaotic_cfg = chaos_config();
  chaotic_cfg.options.verifiable = true;
  chaotic_cfg.fault_plan = crash_nodes({1}, sim::from_millis(300), sim::from_seconds(3));
  chaotic_cfg.fault_plan.corruption_prob = 0.1;
  std::vector<RoundMetrics> rounds;
  const auto chaotic = run_rounds(chaotic_cfg, 1, &rounds);
  ASSERT_EQ(chaotic.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(chaotic[i], clean[i]) << "element " << i;
  }
  EXPECT_EQ(rounds.at(0).rejected_updates, 0);
}

TEST(Chaos, MergeModeDegradesGracefullyUnderChurn) {
  // merge-and-download with the merge provider crashing: aggregators fall
  // back to individual fetches and the round still completes exactly.
  auto cfg = chaos_config();
  cfg.options.merge_and_download = true;
  cfg.providers_per_agg = 2;
  const auto clean = run_rounds(cfg, 1);
  ASSERT_FALSE(clean.empty());

  auto chaotic_cfg = chaos_config();
  chaotic_cfg.options.merge_and_download = true;
  chaotic_cfg.providers_per_agg = 2;
  chaotic_cfg.fault_plan = crash_nodes({1, 2}, sim::from_millis(300), 0);
  const auto chaotic = run_rounds(chaotic_cfg, 1);
  ASSERT_EQ(chaotic.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(chaotic[i], clean[i]) << "element " << i;
  }
}

TEST(Chaos, PeriodicChurnPlanIsDeterministic) {
  const auto a = sim::FaultPlan::periodic_churn({0, 1, 2}, sim::from_seconds(300),
                                                sim::from_seconds(60), sim::from_seconds(20),
                                                0.4, 7);
  const auto b = sim::FaultPlan::periodic_churn({0, 1, 2}, sim::from_seconds(300),
                                                sim::from_seconds(60), sim::from_seconds(20),
                                                0.4, 7);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].host_id, b.crashes[i].host_id);
    EXPECT_EQ(a.crashes[i].down_at, b.crashes[i].down_at);
    EXPECT_EQ(a.crashes[i].up_at, b.crashes[i].up_at);
  }
  // A different seed reshuffles the schedule.
  const auto c = sim::FaultPlan::periodic_churn({0, 1, 2}, sim::from_seconds(300),
                                                sim::from_seconds(60), sim::from_seconds(20),
                                                0.4, 8);
  bool differs = c.crashes.size() != a.crashes.size();
  for (std::size_t i = 0; !differs && i < a.crashes.size(); ++i) {
    differs = a.crashes[i].host_id != c.crashes[i].host_id ||
              a.crashes[i].down_at != c.crashes[i].down_at;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace dfl::core
