// Property-style sweep: across a grid of deployment shapes and protocol
// options, one invariant must hold — the registered global update equals
// the exact average of all participating trainers' gradients, and every
// trainer assembles the full model.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "crypto/encoding.hpp"

namespace dfl::core {
namespace {

struct SweepCase {
  std::size_t trainers;
  std::size_t partitions;
  std::size_t aggs;
  std::size_t nodes;
  std::size_t providers;
  bool merge;
  bool verifiable;
  bool batched;
  ProviderPolicy policy;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string s = "t" + std::to_string(c.trainers) + "_p" + std::to_string(c.partitions) +
                  "_a" + std::to_string(c.aggs) + "_n" + std::to_string(c.nodes) + "_pr" +
                  std::to_string(c.providers);
  if (c.merge) s += "_merge";
  if (c.verifiable) s += "_verif";
  if (c.batched) s += "_batch";
  if (c.policy == ProviderPolicy::kHashed) s += "_hashed";
  return s;
}

class ProtocolSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweep, ExactAggregationInvariant) {
  const SweepCase& sc = GetParam();
  DeploymentConfig cfg;
  cfg.num_trainers = sc.trainers;
  cfg.num_partitions = sc.partitions;
  cfg.partition_elements = 24;
  cfg.aggs_per_partition = sc.aggs;
  cfg.num_ipfs_nodes = sc.nodes;
  cfg.providers_per_agg = sc.providers;
  cfg.options.merge_and_download = sc.merge;
  cfg.options.verifiable = sc.verifiable;
  cfg.options.batched_announce = sc.batched;
  cfg.options.provider_policy = sc.policy;
  cfg.train_time = sim::from_millis(100);
  cfg.schedule = Schedule{sim::from_seconds(30), sim::from_seconds(60), sim::from_millis(50)};
  cfg.seed = 17 * sc.trainers + sc.partitions;

  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);

  // Every trainer completed.
  for (const auto& t : m.trainers) {
    ASSERT_FALSE(t.aborted);
    ASSERT_FALSE(t.update_missing);
  }
  ASSERT_EQ(m.rejected_updates, 0);

  // Exact average invariant.
  const std::size_t n = cfg.partition_elements * cfg.num_partitions;
  std::vector<std::int64_t> sum(n, 0);
  for (std::uint32_t t = 0; t < cfg.num_trainers; ++t) {
    const auto g = d.source().gradient(t, 0);
    for (std::size_t i = 0; i < n; ++i) sum[i] += g[i];
  }
  const auto& got = d.last_global_update();
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = crypto::decode_fixed(sum[i], cfg.options.frac_bits) /
                            static_cast<double>(cfg.num_trainers);
    ASSERT_NEAR(got[i], expected, 1e-9) << "element " << i;
  }

  // Trainer-side reassembly agrees with the directory-side view.
  for (std::uint32_t t = 0; t < cfg.num_trainers; ++t) {
    const auto& local = d.trainer(t).last_model_update();
    ASSERT_EQ(local.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(local[i], got[i]) << "trainer " << t << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolSweep,
    ::testing::Values(
        // Scale sweep, plain protocol.
        SweepCase{1, 1, 1, 1, 1, false, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{2, 1, 1, 1, 1, false, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{5, 3, 1, 2, 2, false, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{8, 2, 1, 4, 2, false, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{16, 4, 1, 8, 4, false, false, false, ProviderPolicy::kRoundRobin},
        // Multi-aggregator.
        SweepCase{8, 2, 2, 4, 2, false, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{12, 3, 3, 4, 2, false, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{8, 1, 4, 4, 4, false, false, false, ProviderPolicy::kRoundRobin},
        // Merge-and-download.
        SweepCase{8, 2, 1, 4, 4, true, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{16, 1, 1, 4, 4, true, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{9, 3, 3, 3, 3, true, false, false, ProviderPolicy::kRoundRobin},
        // Verifiable.
        SweepCase{4, 2, 1, 2, 2, false, true, false, ProviderPolicy::kRoundRobin},
        SweepCase{6, 1, 2, 3, 3, false, true, false, ProviderPolicy::kRoundRobin},
        SweepCase{6, 2, 1, 3, 3, true, true, false, ProviderPolicy::kRoundRobin},
        SweepCase{6, 2, 2, 3, 3, true, true, false, ProviderPolicy::kRoundRobin},
        // Batched announcements.
        SweepCase{8, 4, 1, 4, 2, false, false, true, ProviderPolicy::kRoundRobin},
        SweepCase{6, 2, 2, 3, 3, true, true, true, ProviderPolicy::kRoundRobin},
        // Hashed provider policy.
        SweepCase{8, 2, 1, 4, 4, true, false, false, ProviderPolicy::kHashed},
        SweepCase{12, 2, 2, 6, 3, true, true, true, ProviderPolicy::kHashed},
        // Odd, non-divisible shapes.
        SweepCase{7, 3, 2, 5, 2, false, false, false, ProviderPolicy::kRoundRobin},
        SweepCase{11, 5, 3, 7, 3, true, false, true, ProviderPolicy::kHashed}),
    case_name);

}  // namespace
}  // namespace dfl::core
