#include "crypto/pedersen.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "crypto/backend.hpp"

namespace dfl::crypto {
namespace {

std::vector<std::int64_t> random_values(Rng& rng, std::size_t n, std::int64_t bound) {
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.uniform_int(-bound, bound));
  return v;
}

class PedersenBothCurves : public ::testing::TestWithParam<CurveId> {
 protected:
  const Curve& curve() const { return Curve::get(GetParam()); }
};

TEST_P(PedersenBothCurves, CommitIsDeterministic) {
  const PedersenKey key(curve(), "task-1", 16);
  const PedersenKey key2(curve(), "task-1", 16);
  Rng rng(1);
  const auto v = random_values(rng, 16, 1 << 20);
  EXPECT_EQ(key.commit(v), key2.commit(v));
}

TEST_P(PedersenBothCurves, DifferentDomainsGiveDifferentCommitments) {
  const PedersenKey a(curve(), "task-1", 8);
  const PedersenKey b(curve(), "task-2", 8);
  const std::vector<std::int64_t> v{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_NE(a.commit(v), b.commit(v));
}

TEST_P(PedersenBothCurves, VerifyAcceptsCorrectOpening) {
  const PedersenKey key(curve(), "verify", 32);
  Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    const auto v = random_values(rng, 32, 1 << 24);
    EXPECT_TRUE(key.verify(key.commit(v), v));
  }
}

TEST_P(PedersenBothCurves, VerifyRejectsTamperedVector) {
  const PedersenKey key(curve(), "verify", 32);
  Rng rng(3);
  auto v = random_values(rng, 32, 1 << 24);
  const Commitment c = key.commit(v);
  v[7] += 1;
  EXPECT_FALSE(key.verify(c, v));
}

TEST_P(PedersenBothCurves, VerifyRejectsDroppedContribution) {
  // The attack the paper defends against: an aggregator omitting one
  // trainer's gradient. The accumulated commitment must not verify.
  const PedersenKey key(curve(), "drop", 8);
  Rng rng(4);
  const auto g1 = random_values(rng, 8, 1 << 20);
  const auto g2 = random_values(rng, 8, 1 << 20);
  const auto g3 = random_values(rng, 8, 1 << 20);
  const Commitment total = key.add_all({key.commit(g1), key.commit(g2), key.commit(g3)});

  std::vector<std::int64_t> sum_without_g2(8);
  for (int i = 0; i < 8; ++i) sum_without_g2[static_cast<std::size_t>(i)] = g1[static_cast<std::size_t>(i)] + g3[static_cast<std::size_t>(i)];
  EXPECT_FALSE(key.verify(total, sum_without_g2));

  std::vector<std::int64_t> full_sum(8);
  for (int i = 0; i < 8; ++i) full_sum[static_cast<std::size_t>(i)] = g1[static_cast<std::size_t>(i)] + g2[static_cast<std::size_t>(i)] + g3[static_cast<std::size_t>(i)];
  EXPECT_TRUE(key.verify(total, full_sum));
}

TEST_P(PedersenBothCurves, HomomorphicAddition) {
  const PedersenKey key(curve(), "homo", 16);
  Rng rng(5);
  const auto a = random_values(rng, 16, 1 << 30);
  const auto b = random_values(rng, 16, 1 << 30);
  std::vector<std::int64_t> sum(16);
  for (std::size_t i = 0; i < 16; ++i) sum[i] = a[i] + b[i];
  EXPECT_EQ(key.add(key.commit(a), key.commit(b)), key.commit(sum));
}

TEST_P(PedersenBothCurves, HomomorphismWithCancellation) {
  // a + (-a) = 0 must give the identity commitment.
  const PedersenKey key(curve(), "cancel", 8);
  Rng rng(6);
  const auto a = random_values(rng, 8, 1 << 20);
  std::vector<std::int64_t> neg(8);
  for (std::size_t i = 0; i < 8; ++i) neg[i] = -a[i];
  EXPECT_EQ(key.add(key.commit(a), key.commit(neg)), key.identity());
}

TEST_P(PedersenBothCurves, AddAllMatchesSequentialAdd) {
  const PedersenKey key(curve(), "fold", 8);
  Rng rng(7);
  std::vector<Commitment> cs;
  Commitment acc = key.identity();
  for (int i = 0; i < 6; ++i) {
    const auto v = random_values(rng, 8, 1 << 16);
    cs.push_back(key.commit(v));
    acc = key.add(acc, cs.back());
  }
  EXPECT_EQ(key.add_all(cs), acc);
}

TEST_P(PedersenBothCurves, IdentityIsNeutral) {
  const PedersenKey key(curve(), "id", 4);
  const Commitment c = key.commit({1, -2, 3, -4});
  EXPECT_EQ(key.add(c, key.identity()), c);
  EXPECT_EQ(key.add(key.identity(), c), c);
  EXPECT_TRUE(key.verify(key.identity(), {0, 0, 0, 0}));
  EXPECT_TRUE(key.verify(key.identity(), {}));
}

TEST_P(PedersenBothCurves, ShorterVectorUsesGeneratorPrefix) {
  const PedersenKey key(curve(), "prefix", 8);
  // Committing [a, b] must equal committing [a, b, 0, ..., 0].
  EXPECT_EQ(key.commit({5, -9}), key.commit({5, -9, 0, 0, 0, 0, 0, 0}));
}

TEST_P(PedersenBothCurves, TooLongVectorThrows) {
  const PedersenKey key(curve(), "len", 4);
  EXPECT_THROW((void)key.commit({1, 2, 3, 4, 5}), std::invalid_argument);
}

TEST_P(PedersenBothCurves, NaiveAndPippengerModesAgree) {
  PedersenKey key(curve(), "modes", 64);
  Rng rng(8);
  const auto v = random_values(rng, 64, 1 << 17);
  key.set_mode(MsmMode::kNaive);
  const Commitment naive = key.commit(v);
  key.set_mode(MsmMode::kPippenger);
  const Commitment pip = key.commit(v);
  key.set_mode(MsmMode::kAuto);
  const Commitment aut = key.commit(v);
  EXPECT_EQ(naive, pip);
  EXPECT_EQ(naive, aut);
}

TEST_P(PedersenBothCurves, ExtremeValues) {
  const PedersenKey key(curve(), "extreme", 4);
  const std::vector<std::int64_t> v{std::numeric_limits<std::int64_t>::min(),
                                    std::numeric_limits<std::int64_t>::max(), 0, -1};
  const Commitment c = key.commit(v);
  EXPECT_TRUE(key.verify(c, v));
  auto v2 = v;
  v2[3] = 1;
  EXPECT_FALSE(key.verify(c, v2));
}

TEST_P(PedersenBothCurves, VerifyRejectsMalformedCommitment) {
  const PedersenKey key(curve(), "malformed", 4);
  Commitment bogus{curve().id(), Bytes(33, 0xee)};
  EXPECT_FALSE(key.verify(bogus, {1, 2, 3, 4}));
}

TEST_P(PedersenBothCurves, CrossCurveCommitmentRejected) {
  const Curve& other =
      GetParam() == CurveId::kSecp256k1 ? Curve::secp256r1() : Curve::secp256k1();
  const PedersenKey key(curve(), "cross", 4);
  const PedersenKey okey(other, "cross", 4);
  const Commitment c = okey.commit({1, 2, 3, 4});
  EXPECT_FALSE(key.verify(c, {1, 2, 3, 4}));
  EXPECT_THROW((void)key.add(c, c), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(BothCurves, PedersenBothCurves,
                         ::testing::Values(CurveId::kSecp256k1, CurveId::kSecp256r1),
                         [](const ::testing::TestParamInfo<CurveId>& info) {
                           return info.param == CurveId::kSecp256k1 ? "secp256k1"
                                                                    : "secp256r1";
                         });

TEST(Pedersen, ManyPartyAggregationScenario) {
  // End-to-end shape of the paper's verification: N trainers commit,
  // directory accumulates, aggregator's sum must open the accumulation.
  const Curve& c = Curve::secp256k1();
  const PedersenKey key(c, "fl-round", 33);  // 32 gradients + weight slot
  Rng rng(9);
  constexpr int kTrainers = 16;

  std::vector<std::int64_t> aggregate(33, 0);
  Commitment accumulated = key.identity();
  for (int t = 0; t < kTrainers; ++t) {
    auto grad = random_values(rng, 32, 1 << 16);
    grad.push_back(1);  // the appended averaging weight from Algorithm 1
    for (std::size_t i = 0; i < 33; ++i) aggregate[i] += grad[i];
    accumulated = key.add(accumulated, key.commit(grad));
  }
  EXPECT_TRUE(key.verify(accumulated, aggregate));
  EXPECT_EQ(aggregate[32], kTrainers);  // weight column counts contributions

  // A poisoned aggregate (altered single gradient element) must fail.
  auto poisoned = aggregate;
  poisoned[11] += 7;
  EXPECT_FALSE(key.verify(accumulated, poisoned));
}

TEST_P(PedersenBothCurves, FixedBaseModeAgreesWithDefault) {
  const PedersenKey plain(curve(), "fb-agree", 48);
  PedersenKey fb(curve(), "fb-agree", 48);
  fb.configure_fixed_base();  // auto window, default covered bits
  Rng rng(11);
  for (int i = 0; i < 3; ++i) {
    const auto v = random_values(rng, 48, 1 << 24);
    EXPECT_EQ(plain.commit(v), fb.commit(v));
    EXPECT_TRUE(fb.verify(fb.commit(v), v));
  }
  // Extreme signed values exercise the overflow path (64-bit magnitudes
  // against 34-bit tables) and INT64_MIN negation.
  const std::vector<std::int64_t> extremes = {std::numeric_limits<std::int64_t>::min(),
                                              std::numeric_limits<std::int64_t>::max(), -1, 0, 1};
  EXPECT_EQ(plain.commit(extremes), fb.commit(extremes));
}

TEST(Pedersen, FixedBaseWithPoolMatchesSerial) {
  PedersenKey serial(Curve::secp256k1(), "fb-pool", 40);
  PedersenKey pooled(Curve::secp256k1(), "fb-pool", 40);
  ThreadPool pool(3);
  pooled.set_pool(&pool);
  pooled.configure_fixed_base(6);
  Rng rng(12);
  const auto v = random_values(rng, 40, 1 << 20);
  EXPECT_EQ(serial.commit(v), pooled.commit(v));
  pooled.set_pool(nullptr);
  EXPECT_EQ(serial.commit(v), pooled.commit(v));
}

TEST(Pedersen, ReconfigureFixedBaseRebuildsTables) {
  PedersenKey key(Curve::secp256k1(), "fb-reconf", 8);
  key.configure_fixed_base(4);
  const std::vector<std::int64_t> v{1, -2, 3, -4, 5, -6, 7, -8};
  const Commitment first = key.commit(v);
  ASSERT_NE(key.fixed_base_tables(), nullptr);
  EXPECT_EQ(key.fixed_base_tables()->window_bits(), 4);
  key.configure_fixed_base(7);
  EXPECT_EQ(key.fixed_base_tables(), nullptr);  // invalidated
  EXPECT_EQ(key.commit(v), first);
  EXPECT_EQ(key.fixed_base_tables()->window_bits(), 7);
}

TEST(Pedersen, BatchVerifyUsesPoolConsistently) {
  PedersenKey key(Curve::secp256k1(), "batch-pool", 16);
  Rng vals_rng(13);
  std::vector<Commitment> cs;
  std::vector<std::vector<std::int64_t>> values;
  for (int i = 0; i < 4; ++i) {
    values.push_back(random_values(vals_rng, 16, 1 << 20));
    cs.push_back(key.commit(values.back()));
  }
  ThreadPool pool(4);
  key.set_pool(&pool);
  Rng r1(77);
  EXPECT_TRUE(key.verify_batch(cs, values, r1));
  key.set_pool(nullptr);
  Rng r2(77);
  EXPECT_TRUE(key.verify_batch(cs, values, r2));
}

TEST_P(PedersenBothCurves, FoldOpeningsVectorizedMatchesScalar) {
  // Differential test for the batched-field RLC fold behind verify_batch:
  // both routes must produce bit-identical scalars on ragged rows, empty
  // rows, zeros, and int64 extremes.
  Rng rng(41);
  std::vector<std::vector<std::int64_t>> values;
  values.push_back(random_values(rng, 24, 1 << 30));
  values.push_back(random_values(rng, 7, 1 << 12));
  values.push_back({});
  values.push_back(std::vector<std::int64_t>(16, 0));
  values.push_back({std::numeric_limits<std::int64_t>::max(),
                    std::numeric_limits<std::int64_t>::min() + 1, -1, 1});
  std::size_t dim = 0;
  for (const auto& row : values) dim = std::max(dim, row.size());
  std::vector<U256> r;
  for (std::size_t i = 0; i < values.size(); ++i) r.push_back(U256{rng.next(), rng.next(), 0, 0});

  const auto vectorized = fold_openings(curve(), r, values, dim, /*vectorized=*/true);
  const auto scalar = fold_openings(curve(), r, values, dim, /*vectorized=*/false);
  ASSERT_EQ(vectorized.size(), dim);
  ASSERT_EQ(scalar.size(), dim);
  for (std::size_t j = 0; j < dim; ++j) EXPECT_EQ(vectorized[j], scalar[j]) << "j=" << j;
}

TEST(Pedersen, FoldOpeningsAgreesAcrossBackends) {
  // The vectorized fold must be bit-identical whichever FieldBatchOps
  // table dispatch picks (scalar is always supported; avx2 when the host
  // has it).
  Rng rng(43);
  std::vector<std::vector<std::int64_t>> values;
  for (int i = 0; i < 6; ++i) values.push_back(random_values(rng, 64, 1 << 28));
  std::vector<U256> r;
  for (std::size_t i = 0; i < values.size(); ++i) r.push_back(U256{rng.next(), rng.next(), 0, 0});
  const Curve& curve = Curve::secp256k1();

  set_backend_override(Backend::kScalar);
  const auto on_scalar = fold_openings(curve, r, values, 64, /*vectorized=*/true);
  set_backend_override(std::nullopt);
  const auto automatic = fold_openings(curve, r, values, 64, /*vectorized=*/true);
  ASSERT_EQ(on_scalar.size(), automatic.size());
  for (std::size_t j = 0; j < on_scalar.size(); ++j) EXPECT_EQ(on_scalar[j], automatic[j]);

  if (backend_supported(Backend::kAvx2)) {
    set_backend_override(Backend::kAvx2);
    const auto on_avx2 = fold_openings(curve, r, values, 64, /*vectorized=*/true);
    set_backend_override(std::nullopt);
    for (std::size_t j = 0; j < on_avx2.size(); ++j) EXPECT_EQ(on_avx2[j], on_scalar[j]);
  }
}

TEST(Pedersen, BatchVerifyMatchesScalarFoldEndToEnd) {
  // verify_batch routes through the vectorized fold; it must accept
  // exactly the openings the scalar fold describes.
  PedersenKey key(Curve::secp256k1(), "fold-e2e", 32);
  Rng vals_rng(17);
  std::vector<Commitment> cs;
  std::vector<std::vector<std::int64_t>> values;
  for (int i = 0; i < 5; ++i) {
    values.push_back(random_values(vals_rng, 32, 1 << 22));
    cs.push_back(key.commit(values.back()));
  }
  Rng accept(5);
  EXPECT_TRUE(key.verify_batch(cs, values, accept));
  values[2][9] += 1;
  Rng reject(5);
  EXPECT_FALSE(key.verify_batch(cs, values, reject));
}

TEST(Pedersen, CommitmentHexEncoding) {
  const PedersenKey key(Curve::secp256k1(), "hex", 2);
  const Commitment c = key.commit({3, 4});
  EXPECT_EQ(c.to_hex().size(), 66u);  // 33 bytes compressed
  EXPECT_EQ(key.identity().to_hex(), "00");
}

}  // namespace
}  // namespace dfl::crypto
