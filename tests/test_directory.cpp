#include "directory/directory.hpp"

#include <gtest/gtest.h>

#include "core/bootstrapper.hpp"
#include "core/payload.hpp"

namespace dfl::directory {
namespace {

struct DirFixture : ::testing::Test {
  sim::Simulator sim;
  sim::Network net{sim};
  ipfs::Swarm swarm{net};
  sim::Host& dir_host = net.add_host("dir", sim::HostConfig{100e6, 100e6, 0});
  sim::Host& client = net.add_host("client", sim::HostConfig{10e6, 10e6, 0});

  template <typename T>
  T run(sim::Task<T> task) {
    std::optional<T> out;
    sim.spawn([](sim::Task<T> t, std::optional<T>& o) -> sim::Task<void> {
      o = co_await std::move(t);
    }(std::move(task), out));
    sim.run();
    if (!out) throw std::runtime_error("task did not complete");
    return *out;
  }
};

TEST_F(DirFixture, AnnounceThenLookup) {
  DirectoryService dir(net, dir_host, swarm, DirectoryConfig{});
  const Addr addr{3, 1, 0, EntryType::kGradient};
  const ipfs::Cid cid = ipfs::Cid::of(dfl::bytes_of("g"));
  EXPECT_TRUE(run(dir.announce(client, addr, cid)));
  EXPECT_EQ(run(dir.lookup(client, addr)), std::optional<ipfs::Cid>(cid));
  // Different uploader: not found.
  EXPECT_EQ(run(dir.lookup(client, Addr{4, 1, 0, EntryType::kGradient})), std::nullopt);
}

TEST_F(DirFixture, PollReturnsAllRows) {
  DirectoryService dir(net, dir_host, swarm, DirectoryConfig{});
  for (std::uint32_t t = 0; t < 5; ++t) {
    (void)run(dir.announce(client, Addr{t, 0, 0, EntryType::kGradient},
                           ipfs::Cid::of(Bytes{static_cast<std::uint8_t>(t)})));
  }
  const auto rows = run(dir.poll(client, 0, 0, EntryType::kGradient));
  EXPECT_EQ(rows.size(), 5u);
  // Type and iteration are part of the key.
  EXPECT_TRUE(run(dir.poll(client, 0, 0, EntryType::kPartialUpdate)).empty());
  EXPECT_TRUE(run(dir.poll(client, 0, 1, EntryType::kGradient)).empty());
  EXPECT_TRUE(run(dir.poll(client, 1, 0, EntryType::kGradient)).empty());
}

TEST_F(DirFixture, ReAnnounceReplacesRow) {
  DirectoryService dir(net, dir_host, swarm, DirectoryConfig{});
  const Addr addr{1, 0, 0, EntryType::kGradient};
  const ipfs::Cid c1 = ipfs::Cid::of(dfl::bytes_of("v1"));
  const ipfs::Cid c2 = ipfs::Cid::of(dfl::bytes_of("v2"));
  (void)run(dir.announce(client, addr, c1));
  (void)run(dir.announce(client, addr, c2));
  const auto rows = run(dir.poll(client, 0, 0, EntryType::kGradient));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cid, c2);
}

TEST_F(DirFixture, StatsCountTraffic) {
  DirectoryService dir(net, dir_host, swarm, DirectoryConfig{});
  (void)run(dir.announce(client, Addr{0, 0, 0, EntryType::kGradient},
                         ipfs::Cid::of(dfl::bytes_of("x"))));
  (void)run(dir.poll(client, 0, 0, EntryType::kGradient));
  (void)run(dir.lookup(client, Addr{0, 0, 0, EntryType::kGradient}));
  EXPECT_EQ(dir.stats().announcements, 1u);
  EXPECT_EQ(dir.stats().polls, 1u);
  EXPECT_EQ(dir.stats().lookups, 1u);
  EXPECT_GT(dir.stats().bytes_in, 0u);
  EXPECT_GT(dir.stats().bytes_out, 0u);
  dir.reset_stats();
  EXPECT_EQ(dir.stats().announcements, 0u);
}

TEST_F(DirFixture, GcDropsOldIterations) {
  DirectoryService dir(net, dir_host, swarm, DirectoryConfig{});
  (void)run(dir.announce(client, Addr{0, 0, 0, EntryType::kGradient},
                         ipfs::Cid::of(dfl::bytes_of("old"))));
  (void)run(dir.announce(client, Addr{0, 0, 5, EntryType::kGradient},
                         ipfs::Cid::of(dfl::bytes_of("new"))));
  dir.gc_before(5);
  EXPECT_TRUE(dir.rows(0, 0, EntryType::kGradient).empty());
  EXPECT_EQ(dir.rows(0, 5, EntryType::kGradient).size(), 1u);
}

TEST_F(DirFixture, VerifiableModeRequiresKey) {
  DirectoryConfig cfg;
  cfg.verifiable = true;
  EXPECT_THROW(DirectoryService(net, dir_host, swarm, cfg), std::invalid_argument);
}

struct VerifiableDirFixture : DirFixture {
  crypto::PedersenKey key{crypto::Curve::secp256k1(), "dir-test", 9};
  core::PayloadVerifier verifier{key};
  DirectoryConfig cfg{true, 16, 32, 33};
  DirectoryService dir{net, dir_host, swarm, cfg, &key, &verifier};
  ipfs::IpfsNode& node = swarm.add_node("n0", sim::HostConfig{100e6, 100e6, 0});

  core::Payload payload_of(std::vector<std::int64_t> v) { return core::Payload{std::move(v)}; }

  /// Announces a trainer gradient with its commitment.
  void announce_gradient(std::uint32_t trainer, const core::Payload& p) {
    const ipfs::Cid cid = node.put_local(p.serialize());
    ASSERT_TRUE(run(dir.announce(client, Addr{trainer, 0, 0, EntryType::kGradient}, cid,
                                 key.commit(p.values))));
  }
};

TEST_F(VerifiableDirFixture, GradientWithoutCommitmentRejected) {
  EXPECT_FALSE(run(dir.announce(client, Addr{0, 0, 0, EntryType::kGradient},
                                ipfs::Cid::of(dfl::bytes_of("g")))));
  EXPECT_TRUE(dir.rows(0, 0, EntryType::kGradient).empty());
}

TEST_F(VerifiableDirFixture, HonestGlobalUpdateAccepted) {
  const auto g1 = payload_of({1, 2, 3, 1});
  const auto g2 = payload_of({10, 20, 30, 1});
  announce_gradient(0, g1);
  announce_gradient(1, g2);
  const core::Payload sum = core::Payload::add(g1, g2);
  const ipfs::Cid cid = node.put_local(sum.serialize());
  EXPECT_TRUE(run(dir.announce(client, Addr{100, 0, 0, EntryType::kGlobalUpdate}, cid)));
  EXPECT_EQ(dir.rows(0, 0, EntryType::kGlobalUpdate).size(), 1u);
  EXPECT_EQ(dir.stats().verifications, 1u);
  EXPECT_EQ(dir.stats().verifications_failed, 0u);
}

TEST_F(VerifiableDirFixture, DroppedGradientRejected) {
  const auto g1 = payload_of({1, 2, 3, 1});
  const auto g2 = payload_of({10, 20, 30, 1});
  announce_gradient(0, g1);
  announce_gradient(1, g2);
  // Malicious aggregator drops g2: uploads only g1 as the "global" update.
  const ipfs::Cid cid = node.put_local(g1.serialize());
  EXPECT_FALSE(run(dir.announce(client, Addr{100, 0, 0, EntryType::kGlobalUpdate}, cid)));
  EXPECT_TRUE(dir.rows(0, 0, EntryType::kGlobalUpdate).empty());
  EXPECT_EQ(dir.stats().verifications_failed, 1u);
}

TEST_F(VerifiableDirFixture, AlteredUpdateRejected) {
  const auto g1 = payload_of({5, 5, 5, 1});
  announce_gradient(0, g1);
  auto altered = g1;
  altered.values[1] += 1;
  const ipfs::Cid cid = node.put_local(altered.serialize());
  EXPECT_FALSE(run(dir.announce(client, Addr{100, 0, 0, EntryType::kGlobalUpdate}, cid)));
}

TEST_F(VerifiableDirFixture, UnfetchableUpdateRejected) {
  announce_gradient(0, payload_of({1, 1}));
  // CID that no node stores.
  EXPECT_FALSE(run(dir.announce(client, Addr{100, 0, 0, EntryType::kGlobalUpdate},
                                ipfs::Cid::of(dfl::bytes_of("nowhere")))));
}

TEST_F(VerifiableDirFixture, AccumulatedCommitments) {
  dir.set_assignment(0, 100, 0);
  dir.set_assignment(0, 100, 1);
  dir.set_assignment(0, 101, 2);
  const auto g0 = payload_of({1, 0, 0, 1});
  const auto g1 = payload_of({0, 2, 0, 1});
  const auto g2 = payload_of({0, 0, 3, 1});
  announce_gradient(0, g0);
  announce_gradient(1, g1);
  announce_gradient(2, g2);

  // Partition accumulation covers all three.
  const auto part = run(dir.partition_commitment(client, 0, 0));
  EXPECT_TRUE(key.verify(part, {1, 2, 3, 3}));

  // Aggregator 100's accumulation covers trainers 0 and 1 only.
  const auto agg100 = run(dir.aggregator_commitment(client, 0, 100, 0));
  EXPECT_TRUE(key.verify(agg100, {1, 2, 0, 2}));
  const auto agg101 = run(dir.aggregator_commitment(client, 0, 101, 0));
  EXPECT_TRUE(key.verify(agg101, {0, 0, 3, 1}));
}

TEST_F(VerifiableDirFixture, GradientCommitmentsListed) {
  const auto g0 = payload_of({7, 1});
  const auto g1 = payload_of({9, 1});
  announce_gradient(0, g0);
  announce_gradient(1, g1);
  const auto list = run(dir.gradient_commitments(client, 0, 0));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].first, 0u);
  EXPECT_TRUE(key.verify(list[0].second, {7, 1}));
  EXPECT_TRUE(key.verify(list[1].second, {9, 1}));
}

}  // namespace
}  // namespace dfl::directory
