// Storage-economics ledger tests: per-node accounting over real protocol
// rounds, and the allocation-fairness comparison Section VI motivates.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "ipfs/economics.hpp"

namespace dfl::ipfs {
namespace {

core::DeploymentConfig econ_config(core::ProviderPolicy policy) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 12;
  cfg.num_partitions = 2;
  cfg.partition_elements = 2048;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 4;
  cfg.options.provider_policy = policy;
  cfg.train_time = sim::from_millis(200);
  cfg.schedule =
      core::Schedule{sim::from_seconds(30), sim::from_seconds(60), sim::from_millis(50)};
  return cfg;
}

TEST(Economics, NodesEarnForServingTraffic) {
  core::Deployment d(econ_config(core::ProviderPolicy::kRoundRobin));
  CreditLedger ledger(d.swarm());
  (void)d.run_round(0);
  const auto earnings = ledger.settle();
  ASSERT_EQ(earnings.size(), 4u);
  double total = 0;
  for (const auto& e : earnings) {
    EXPECT_GT(e.bytes_ingested, 0u) << "node " << e.node_id;  // received uploads
    EXPECT_GT(e.bytes_served, 0u) << "node " << e.node_id;    // served downloads
    EXPECT_GT(e.credits, 0.0);
    total += e.credits;
  }
  EXPECT_NEAR(ledger.total_credits(), total, 1e-9);
}

TEST(Economics, CheckpointResetsBaseline) {
  core::Deployment d(econ_config(core::ProviderPolicy::kRoundRobin));
  CreditLedger ledger(d.swarm());
  (void)d.run_round(0);
  const double round0 = ledger.total_credits();
  EXPECT_GT(round0, 0.0);
  ledger.checkpoint();
  // Nothing happened since the checkpoint: only at-rest storage credits.
  CreditRates no_storage;
  no_storage.per_mb_stored = 0.0;
  CreditLedger strict(d.swarm(), no_storage);
  EXPECT_DOUBLE_EQ(strict.total_credits(), 0.0);
}

TEST(Economics, StoredBytesEarnAtRestCredits) {
  sim::Simulator sim;
  sim::Network net(sim);
  Swarm swarm(net);
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  CreditLedger ledger(swarm, CreditRates{0.0, 0.0, 2.0});
  node.put_local(Bytes(500'000, 7));
  const auto earnings = ledger.settle();
  ASSERT_EQ(earnings.size(), 1u);
  EXPECT_EQ(earnings[0].bytes_stored, 500'000u);
  EXPECT_NEAR(earnings[0].credits, 1.0, 1e-9);  // 0.5 MB * 2.0/MB
}

TEST(Economics, ImbalanceZeroWhenEven) {
  sim::Simulator sim;
  sim::Network net(sim);
  Swarm swarm(net);
  for (int i = 0; i < 4; ++i) {
    swarm.add_node("n" + std::to_string(i), sim::HostConfig{10e6, 10e6, 0});
    swarm.node(static_cast<std::size_t>(i)).put_local(Bytes(1000, static_cast<std::uint8_t>(i)));
  }
  CreditLedger ledger(swarm, CreditRates{0, 0, 1.0});
  EXPECT_NEAR(ledger.earnings_imbalance(), 0.0, 1e-9);
}

TEST(Economics, ImbalanceDetectsHotspot) {
  sim::Simulator sim;
  sim::Network net(sim);
  Swarm swarm(net);
  for (int i = 0; i < 4; ++i) {
    swarm.add_node("n" + std::to_string(i), sim::HostConfig{10e6, 10e6, 0});
  }
  swarm.node(0).put_local(Bytes(1'000'000, 1));  // one node holds everything
  CreditLedger ledger(swarm, CreditRates{0, 0, 1.0});
  EXPECT_GT(ledger.earnings_imbalance(), 0.7);
}

TEST(Economics, BothPoliciesSpreadEarningsAcrossRealRound) {
  // With uploads spread over all nodes, no policy should starve a node.
  for (const auto policy :
       {core::ProviderPolicy::kRoundRobin, core::ProviderPolicy::kHashed}) {
    core::Deployment d(econ_config(policy));
    CreditLedger ledger(d.swarm());
    (void)d.run_round(0);
    EXPECT_LT(ledger.earnings_imbalance(), 0.5);
  }
}

}  // namespace
}  // namespace dfl::ipfs
