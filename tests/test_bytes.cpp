#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace dfl {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexAcceptsPrefixAndUppercase) {
  const Bytes expected{0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(from_hex("0xDEADBEEF"), expected);
  EXPECT_EQ(from_hex("DeAdBeEf"), expected);
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsInvalidDigits) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, BytesOfString) {
  const Bytes b = bytes_of("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  const Bytes d{1, 2};
  EXPECT_TRUE(equal_constant_time(a, b));
  EXPECT_FALSE(equal_constant_time(a, c));
  EXPECT_FALSE(equal_constant_time(a, d));
  EXPECT_TRUE(equal_constant_time(Bytes{}, Bytes{}));
}

TEST(Bytes, HexRoundTripAllByteValues) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(from_hex(to_hex(all)), all);
}

}  // namespace
}  // namespace dfl
