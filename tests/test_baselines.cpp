#include <gtest/gtest.h>

#include <memory>

#include "core/baseline_central.hpp"
#include "core/baseline_direct.hpp"
#include "core/runner.hpp"
#include "ml/federated.hpp"

namespace dfl::core {
namespace {

TEST(DirectBaseline, RoundCompletesWithSensibleDelays) {
  DirectConfig cfg;
  cfg.num_trainers = 4;
  cfg.partition_elements = 1024;
  DirectIplsBaseline base(cfg);
  const DirectRoundResult r = base.run_round();
  EXPECT_GT(r.aggregation_delay_s, 0.0);
  EXPECT_GT(r.round_time_s, r.aggregation_delay_s);
  EXPECT_EQ(r.sync_delay_s, 0.0);  // single aggregator
  EXPECT_GT(r.bytes_per_aggregator, 0u);
}

TEST(DirectBaseline, AggregationDelayScalesWithTrainers) {
  DirectConfig cfg;
  cfg.partition_elements = 8192;
  cfg.num_trainers = 4;
  const double d4 = DirectIplsBaseline(cfg).run_round().aggregation_delay_s;
  cfg.num_trainers = 16;
  const double d16 = DirectIplsBaseline(cfg).run_round().aggregation_delay_s;
  // 16 gradients serialize on one downlink: ~4x the 4-trainer time.
  EXPECT_NEAR(d16 / d4, 4.0, 0.8);
}

TEST(DirectBaseline, MultiAggregatorSyncCostsExtra) {
  DirectConfig cfg;
  cfg.num_trainers = 8;
  cfg.partition_elements = 4096;
  cfg.aggs_per_partition = 2;
  const DirectRoundResult r = DirectIplsBaseline(cfg).run_round();
  EXPECT_GT(r.sync_delay_s, 0.0);
}

TEST(DirectBaseline, FasterThanNaiveIndirect) {
  // The Figure 1 comparison: direct IPLS vs indirect-without-merging.
  DirectConfig direct_cfg;
  direct_cfg.num_trainers = 8;
  direct_cfg.partition_elements = 8192;
  const double direct = DirectIplsBaseline(direct_cfg).run_round().aggregation_delay_s;

  DeploymentConfig naive_cfg;
  naive_cfg.num_trainers = 8;
  naive_cfg.num_partitions = 1;
  naive_cfg.partition_elements = 8192;
  naive_cfg.num_ipfs_nodes = 8;
  naive_cfg.providers_per_agg = 8;
  naive_cfg.options.merge_and_download = false;
  naive_cfg.train_time = sim::from_seconds(1);
  Deployment naive(naive_cfg);
  const double indirect = naive.run_round(0).mean_aggregation_delay_s();

  EXPECT_GT(indirect, direct);
}

TEST(CentralBaseline, RoundCompletes) {
  CentralConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_params = 2048;
  CentralizedFl central(cfg, nullptr);
  const CentralRoundResult r = central.run_round(0);
  EXPECT_GT(r.aggregation_delay_s, 0.0);
  EXPECT_GT(r.round_time_s, r.aggregation_delay_s);
  EXPECT_EQ(r.server_bytes_received, 4 * Payload::wire_size(2048 + 1));
}

TEST(CentralBaseline, ConvergenceMatchesDecentralizedProtocol) {
  // The paper's headline convergence claim: the decentralized protocol's
  // learning trajectory is EXACTLY centralized FL's, because aggregation
  // is exact. Run both with identical models/shards and compare params.
  Rng data_rng(42);
  const ml::Dataset data = ml::make_gaussian_blobs(data_rng, 256, 4, 2, 4.0);
  const auto shards = ml::split_iid(data, 4, data_rng);

  const auto make_source = [&](std::uint64_t seed) {
    Rng model_rng(seed);
    auto model = std::make_unique<ml::LogisticRegression>(4, 2, model_rng);
    return std::make_shared<MlGradientSource>(std::move(model), shards, 0.5,
                                              sim::from_millis(100));
  };

  auto central_src = make_source(9);
  CentralConfig ccfg;
  ccfg.num_trainers = 4;
  ccfg.num_params = central_src->model().num_params();
  CentralizedFl central(ccfg, central_src);

  // Deployment takes unique ownership; constructing again with the same
  // seed yields identical initial params to the centralized copy.
  Rng model_rng(9);
  auto dec_model = std::make_unique<ml::LogisticRegression>(4, 2, model_rng);
  auto dec_src = std::make_unique<MlGradientSource>(std::move(dec_model), shards, 0.5,
                                                    sim::from_millis(100));

  DeploymentConfig dcfg;
  dcfg.num_trainers = 4;
  dcfg.num_partitions = 2;
  // LogisticRegression(4,2) has 10 params -> 5 per partition.
  dcfg.partition_elements = central_src->model().num_params() / 2;
  dcfg.num_ipfs_nodes = 2;
  dcfg.train_time = sim::from_millis(100);
  Deployment decentralized(dcfg, std::move(dec_src));

  for (std::uint32_t round = 0; round < 5; ++round) {
    (void)central.run_round(round);
    (void)decentralized.run_round(round);
    const auto& central_params =
        dynamic_cast<MlGradientSource&>(central.source()).model().params();
    const auto& dec_params =
        dynamic_cast<MlGradientSource&>(decentralized.source()).model().params();
    ASSERT_EQ(central_params.size(), dec_params.size());
    for (std::size_t i = 0; i < central_params.size(); ++i) {
      ASSERT_NEAR(central_params[i], dec_params[i], 1e-12) << "round " << round;
    }
  }
}

TEST(CentralBaseline, ModelActuallyLearns) {
  Rng rng(7);
  const ml::Dataset data = ml::make_gaussian_blobs(rng, 512, 2, 2, 4.0);
  const ml::Dataset test = ml::make_gaussian_blobs(rng, 256, 2, 2, 4.0);
  const auto shards = ml::split_iid(data, 4, rng);
  Rng model_rng(1);
  auto model = std::make_unique<ml::LogisticRegression>(2, 2, model_rng);
  auto source = std::make_shared<MlGradientSource>(std::move(model), shards, 0.5,
                                                   sim::from_millis(10));
  CentralConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_params = source->model().num_params();
  CentralizedFl central(cfg, source);
  for (std::uint32_t r = 0; r < 30; ++r) (void)central.run_round(r);
  EXPECT_GT(source->model().accuracy(test), 0.95);
}

}  // namespace
}  // namespace dfl::core
