#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/federated.hpp"
#include "ml/model.hpp"

namespace dfl::ml {
namespace {

TEST(Dataset, GaussianBlobsShape) {
  Rng rng(1);
  const Dataset ds = make_gaussian_blobs(rng, 500, 4, 3);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.num_features, 4u);
  EXPECT_EQ(ds.num_classes, 3);
  for (const Example& ex : ds.examples) {
    EXPECT_EQ(ex.x.size(), 4u);
    EXPECT_GE(ex.label, 0);
    EXPECT_LT(ex.label, 3);
  }
}

TEST(Dataset, BlobsAreLearnableByCentroid) {
  // With large separation, class 0's first coordinate is near +sep.
  Rng rng(2);
  const Dataset ds = make_gaussian_blobs(rng, 2000, 2, 2, 6.0);
  double mean0 = 0, mean1 = 0;
  int n0 = 0, n1 = 0;
  for (const Example& ex : ds.examples) {
    if (ex.label == 0) {
      mean0 += ex.x[0];
      ++n0;
    } else {
      mean1 += ex.x[0];
      ++n1;
    }
  }
  EXPECT_GT(mean0 / n0, 4.0);
  EXPECT_LT(mean1 / n1, -4.0);
}

TEST(Dataset, SpiralsAndTeacher) {
  Rng rng(3);
  const Dataset sp = make_two_spirals(rng, 300);
  EXPECT_EQ(sp.num_features, 2u);
  EXPECT_EQ(sp.num_classes, 2);
  const Dataset lin = make_linear_teacher(rng, 300, 5);
  EXPECT_EQ(lin.num_features, 5u);
  int pos = 0;
  for (const Example& ex : lin.examples) pos += ex.label;
  EXPECT_GT(pos, 50);  // both classes present
  EXPECT_LT(pos, 250);
}

// Finite-difference gradient check — the strongest correctness test for
// the differentiable models.
template <typename ModelT>
void check_gradient(ModelT& model, const Dataset& data) {
  const auto analytic = model.gradient(data);
  const std::vector<double> p0 = model.params();
  const double eps = 1e-6;
  // Spot-check a spread of parameter indices.
  for (std::size_t i = 0; i < p0.size(); i += std::max<std::size_t>(1, p0.size() / 17)) {
    auto pp = p0;
    pp[i] += eps;
    model.set_params(pp);
    const double up = model.loss(data);
    pp[i] -= 2 * eps;
    model.set_params(pp);
    const double down = model.loss(data);
    model.set_params(p0);
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5 + 1e-3 * std::abs(numeric)) << "param " << i;
  }
}

TEST(LogisticRegressionTest, GradientMatchesFiniteDifference) {
  Rng rng(4);
  const Dataset ds = make_gaussian_blobs(rng, 50, 3, 3);
  LogisticRegression model(3, 3, rng);
  check_gradient(model, ds);
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  Rng rng(5);
  const Dataset ds = make_two_spirals(rng, 40);
  Mlp model(2, 8, 2, rng);
  check_gradient(model, ds);
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  Rng rng(6);
  const Dataset train = make_gaussian_blobs(rng, 1000, 2, 2, 4.0);
  const Dataset test = make_gaussian_blobs(rng, 500, 2, 2, 4.0);
  LogisticRegression model(2, 2, rng);
  train_sgd(model, train, SgdConfig{0.5, 0, 100}, rng);
  EXPECT_GT(model.accuracy(test), 0.95);
}

TEST(MlpTest, LearnsNonlinearData) {
  Rng rng(7);
  const Dataset train = make_two_spirals(rng, 600, 0.05);
  Mlp model(2, 24, 2, rng);
  train_sgd(model, train, SgdConfig{0.8, 0, 1500}, rng);
  EXPECT_GT(model.accuracy(train), 0.9);
}

TEST(ModelTest, SgdReducesLoss) {
  Rng rng(8);
  const Dataset ds = make_gaussian_blobs(rng, 500, 3, 3);
  LogisticRegression model(3, 3, rng);
  const double before = model.loss(ds);
  train_sgd(model, ds, SgdConfig{0.3, 0, 50}, rng);
  EXPECT_LT(model.loss(ds), before);
}

TEST(ModelTest, CloneIsIndependent) {
  Rng rng(9);
  LogisticRegression model(2, 2, rng);
  auto copy = model.clone();
  EXPECT_EQ(copy->params(), model.params());
  model.apply_gradient(std::vector<double>(model.num_params(), 1.0), 0.1);
  EXPECT_NE(copy->params(), model.params());
}

TEST(ModelTest, SetParamsRejectsWrongSize) {
  Rng rng(10);
  LogisticRegression model(2, 2, rng);
  EXPECT_THROW(model.set_params(std::vector<double>(3)), std::invalid_argument);
  Mlp mlp(2, 4, 2, rng);
  EXPECT_THROW(mlp.set_params(std::vector<double>(1)), std::invalid_argument);
}

TEST(ModelTest, ApplyGradientRejectsWrongSize) {
  Rng rng(11);
  LogisticRegression model(2, 2, rng);
  EXPECT_THROW(model.apply_gradient(std::vector<double>(1), 0.1), std::invalid_argument);
}

TEST(ModelTest, BatchGradientUsesSubset) {
  Rng rng(12);
  const Dataset ds = make_gaussian_blobs(rng, 100, 2, 2);
  LogisticRegression model(2, 2, rng);
  // Full-batch gradient should equal the average of the two half batches.
  std::vector<std::size_t> first_half, second_half;
  for (std::size_t i = 0; i < 50; ++i) first_half.push_back(i);
  for (std::size_t i = 50; i < 100; ++i) second_half.push_back(i);
  const auto full = model.gradient(ds);
  const auto g1 = model.gradient(ds, first_half);
  const auto g2 = model.gradient(ds, second_half);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(full[i], (g1[i] + g2[i]) / 2, 1e-12);
  }
}

TEST(Softmax, SumsToOneAndOrders) {
  const auto p = softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
  // Stability with huge logits.
  const auto q = softmax({1000.0, 1000.0});
  EXPECT_NEAR(q[0], 0.5, 1e-12);
}

TEST(Federated, IidSplitPreservesExamples) {
  Rng rng(13);
  const Dataset ds = make_gaussian_blobs(rng, 100, 2, 2);
  const auto parts = split_iid(ds, 8, rng);
  EXPECT_EQ(parts.size(), 8u);
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    EXPECT_GE(p.size(), 12u);  // 100/8 = 12.5
    EXPECT_LE(p.size(), 13u);
    EXPECT_EQ(p.num_classes, 2);
  }
  EXPECT_EQ(total, 100u);
}

TEST(Federated, LabelSkewSplitIsSkewed) {
  Rng rng(14);
  const Dataset ds = make_gaussian_blobs(rng, 4000, 2, 4);
  const auto parts = split_label_skew(ds, 4, 0.3, rng);
  std::size_t total = 0;
  double max_frac = 0;
  for (const auto& p : parts) {
    total += p.size();
    if (p.size() < 40) continue;
    std::vector<int> counts(4, 0);
    for (const Example& ex : p.examples) ++counts[static_cast<std::size_t>(ex.label)];
    const int mx = *std::max_element(counts.begin(), counts.end());
    max_frac = std::max(max_frac, static_cast<double>(mx) / static_cast<double>(p.size()));
  }
  EXPECT_EQ(total, 4000u);
  EXPECT_GT(max_frac, 0.4);  // some shard is visibly label-skewed
}

TEST(Federated, WeightedAverage) {
  const std::vector<std::vector<double>> grads{{1.0, 2.0}, {3.0, 6.0}};
  const auto avg = weighted_average(grads, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(avg[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 4.0);
  const auto weighted = weighted_average(grads, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(weighted[0], 1.5);
  EXPECT_THROW((void)weighted_average(grads, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)weighted_average(grads, {0.0, 0.0}), std::invalid_argument);
}

TEST(Federated, FedSgdEqualsCentralizedSgdOnIidFullBatch) {
  // The core convergence-equivalence claim: averaging full-batch shard
  // gradients (equal shard sizes) equals the full-batch gradient of the
  // union, so FedSGD steps match centralized steps exactly.
  Rng rng(15);
  Dataset ds = make_gaussian_blobs(rng, 128, 2, 2);
  const auto parts = split_iid(ds, 4, rng);
  Rng model_rng(100);
  LogisticRegression fed(2, 2, model_rng);
  Rng model_rng2(100);
  LogisticRegression central(2, 2, model_rng2);
  ASSERT_EQ(fed.params(), central.params());

  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<double>> grads;
    std::vector<double> weights;
    for (const auto& p : parts) {
      grads.push_back(fed.gradient(p));
      weights.push_back(static_cast<double>(p.size()));
    }
    fed.apply_gradient(weighted_average(grads, weights), 0.5);
    central.apply_gradient(central.gradient(ds), 0.5);
    for (std::size_t i = 0; i < fed.num_params(); ++i) {
      ASSERT_NEAR(fed.params()[i], central.params()[i], 1e-10) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace dfl::ml
