// Tests for the optimization/extension layer of the crypto substrate:
// wNAF scalar multiplication, blinded (hiding) Pedersen commitments, and
// probabilistic batch verification.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/encoding.hpp"
#include "crypto/pedersen.hpp"

namespace dfl::crypto {
namespace {

U256 random_scalar(Rng& rng, const Curve& c) {
  for (;;) {
    U256 v{rng.next(), rng.next(), rng.next(), rng.next()};
    if (v < c.order()) return v;
  }
}

class WnafBothCurves : public ::testing::TestWithParam<CurveId> {
 protected:
  const Curve& c() const { return Curve::get(GetParam()); }
};

TEST_P(WnafBothCurves, MatchesDoubleAndAddOnRandomScalars) {
  Rng rng(41);
  for (int i = 0; i < 20; ++i) {
    const U256 k = random_scalar(rng, c());
    EXPECT_TRUE(c().eq(c().scalar_mul_wnaf(c().generator(), k),
                       c().scalar_mul(c().generator(), k)));
  }
}

TEST_P(WnafBothCurves, SmallScalars) {
  for (std::uint64_t k = 0; k <= 64; ++k) {
    EXPECT_TRUE(c().eq(c().scalar_mul_wnaf(c().generator(), U256(k)),
                       c().scalar_mul(c().generator(), U256(k))))
        << "k=" << k;
  }
}

TEST_P(WnafBothCurves, EdgeScalars) {
  // Order-adjacent and all-ones patterns exercise digit-carry paths.
  U256 nm1 = c().order();
  nm1.sub_assign(U256(1));
  const U256 all_ones{~0ULL, ~0ULL, ~0ULL, 0x7fffffffffffffffULL};
  for (const U256& k : {nm1, all_ones, U256(0xffffffffffffffffULL)}) {
    EXPECT_TRUE(c().eq(c().scalar_mul_wnaf(c().generator(), k),
                       c().scalar_mul(c().generator(), k)));
  }
  EXPECT_TRUE(c().is_infinity(c().scalar_mul_wnaf(c().generator(), c().order())));
  EXPECT_TRUE(c().is_infinity(c().scalar_mul_wnaf(c().generator(), U256(0))));
  EXPECT_TRUE(c().is_infinity(c().scalar_mul_wnaf(AffinePoint{}, U256(5))));
}

INSTANTIATE_TEST_SUITE_P(BothCurves, WnafBothCurves,
                         ::testing::Values(CurveId::kSecp256k1, CurveId::kSecp256r1),
                         [](const ::testing::TestParamInfo<CurveId>& info) {
                           return info.param == CurveId::kSecp256k1 ? "secp256k1"
                                                                    : "secp256r1";
                         });

struct BlindedFixture : ::testing::Test {
  const Curve& curve = Curve::secp256k1();
  PedersenKey key{curve, "blinded", 8};
  Rng rng{99};
};

TEST_F(BlindedFixture, BlindingGeneratorIndependentOfMessageGenerators) {
  // H must differ from every h_i (no known relation by construction).
  const AffinePoint& h = key.blinding_generator();
  EXPECT_TRUE(curve.is_on_curve(h));
  EXPECT_FALSE(h.infinity);
}

TEST_F(BlindedFixture, VerifyAcceptsAndRejects) {
  const std::vector<std::int64_t> v{1, -2, 3, 4};
  const U256 blind = random_scalar(rng, curve);
  const Commitment c = key.commit_blinded(v, blind);
  EXPECT_TRUE(key.verify_blinded(c, v, blind));
  // Wrong blind, wrong vector -> reject.
  EXPECT_FALSE(key.verify_blinded(c, v, U256(123)));
  auto v2 = v;
  v2[0] += 1;
  EXPECT_FALSE(key.verify_blinded(c, v2, blind));
}

TEST_F(BlindedFixture, DifferentBlindsHideTheSameVector) {
  const std::vector<std::int64_t> v{7, 7, 7};
  const Commitment a = key.commit_blinded(v, random_scalar(rng, curve));
  const Commitment b = key.commit_blinded(v, random_scalar(rng, curve));
  EXPECT_NE(a, b);  // hiding: same message, different commitments
}

TEST_F(BlindedFixture, ZeroBlindEqualsPlainCommit) {
  const std::vector<std::int64_t> v{5, -6};
  EXPECT_EQ(key.commit_blinded(v, U256(0)), key.commit(v));
}

TEST_F(BlindedFixture, BlindsAddHomomorphically) {
  // C(v1, r1) * C(v2, r2) = C(v1+v2, r1+r2) when r1+r2 doesn't wrap n.
  const std::vector<std::int64_t> v1{1, 2};
  const std::vector<std::int64_t> v2{10, 20};
  const U256 r1(1000), r2(2000);
  const Commitment sum = key.add(key.commit_blinded(v1, r1), key.commit_blinded(v2, r2));
  EXPECT_TRUE(key.verify_blinded(sum, {11, 22}, U256(3000)));
}

struct BatchVerifyFixture : ::testing::Test {
  const Curve& curve = Curve::secp256r1();
  PedersenKey key{curve, "batch", 16};
  Rng rng{7};

  std::vector<std::vector<std::int64_t>> vectors;
  std::vector<Commitment> commitments;

  void make(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<std::int64_t> v;
      for (int j = 0; j < 16; ++j) v.push_back(rng.uniform_int(-(1 << 20), 1 << 20));
      commitments.push_back(key.commit(v));
      vectors.push_back(std::move(v));
    }
  }
};

TEST_F(BatchVerifyFixture, AcceptsAllValid) {
  make(10);
  EXPECT_TRUE(key.verify_batch(commitments, vectors, rng));
}

TEST_F(BatchVerifyFixture, RejectsSingleTamperedOpening) {
  make(10);
  vectors[6][3] += 1;
  EXPECT_FALSE(key.verify_batch(commitments, vectors, rng));
}

TEST_F(BatchVerifyFixture, RejectsSingleTamperedCommitment) {
  make(5);
  commitments[2] = key.commit({9, 9, 9});
  EXPECT_FALSE(key.verify_batch(commitments, vectors, rng));
}

TEST_F(BatchVerifyFixture, RejectsSwappedPair) {
  // Swapping two openings keeps the SUM valid; the random coefficients
  // must still catch it (this is what a naive "check the sum" would miss).
  make(4);
  std::swap(vectors[0], vectors[1]);
  EXPECT_FALSE(key.verify_batch(commitments, vectors, rng));
}

TEST_F(BatchVerifyFixture, EmptyBatchAccepted) {
  EXPECT_TRUE(key.verify_batch({}, {}, rng));
}

TEST_F(BatchVerifyFixture, SizeMismatchRejected) {
  make(3);
  vectors.pop_back();
  EXPECT_FALSE(key.verify_batch(commitments, vectors, rng));
}

TEST_F(BatchVerifyFixture, MalformedCommitmentRejected) {
  make(2);
  commitments[1].point = Bytes(33, 0xee);
  EXPECT_FALSE(key.verify_batch(commitments, vectors, rng));
}

TEST_F(BatchVerifyFixture, CrossCurveRejected) {
  make(2);
  commitments[0].curve = CurveId::kSecp256k1;
  EXPECT_FALSE(key.verify_batch(commitments, vectors, rng));
}

TEST_F(BatchVerifyFixture, SingleElementBatchMatchesPlainVerify) {
  make(1);
  EXPECT_TRUE(key.verify_batch(commitments, vectors, rng));
  EXPECT_TRUE(key.verify(commitments[0], vectors[0]));
}

TEST_F(BatchVerifyFixture, MixedLengthVectors) {
  vectors.push_back({1, 2, 3});
  commitments.push_back(key.commit(vectors.back()));
  vectors.push_back({4});
  commitments.push_back(key.commit(vectors.back()));
  EXPECT_TRUE(key.verify_batch(commitments, vectors, rng));
  vectors[1][0] = 5;
  EXPECT_FALSE(key.verify_batch(commitments, vectors, rng));
}

}  // namespace
}  // namespace dfl::crypto
