#include "common/serde.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace dfl {
namespace {

TEST(Serde, IntegerRoundTrip) {
  Writer w;
  w.put<std::uint8_t>(0xab);
  w.put<std::uint16_t>(0x1234);
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<std::uint64_t>(0x0123456789abcdefULL);
  w.put<std::int32_t>(-42);
  w.put<std::int64_t>(std::numeric_limits<std::int64_t>::min());

  Reader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 0xab);
  EXPECT_EQ(r.get<std::uint16_t>(), 0x1234);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.get<std::uint64_t>(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get<std::int32_t>(), -42);
  EXPECT_EQ(r.get<std::int64_t>(), std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(r.done());
}

TEST(Serde, DoubleRoundTrip) {
  Writer w;
  w.put_double(3.14159265358979);
  w.put_double(-0.0);
  w.put_double(std::numeric_limits<double>::infinity());
  Reader r(w.bytes());
  EXPECT_DOUBLE_EQ(r.get_double(), 3.14159265358979);
  EXPECT_DOUBLE_EQ(r.get_double(), -0.0);
  EXPECT_EQ(r.get_double(), std::numeric_limits<double>::infinity());
}

TEST(Serde, BytesAndStringRoundTrip) {
  Writer w;
  w.put_bytes(Bytes{9, 8, 7});
  w.put_string("hello world");
  w.put_bytes(Bytes{});
  Reader r(w.bytes());
  EXPECT_EQ(r.get_bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_TRUE(r.get_bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, DoublesVectorRoundTrip) {
  Writer w;
  w.put_doubles({1.5, -2.5, 1e-9});
  Reader r(w.bytes());
  const auto v = r.get_doubles();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], -2.5);
}

TEST(Serde, TruncatedBufferThrows) {
  Writer w;
  w.put<std::uint32_t>(7);
  Reader r(w.bytes());
  EXPECT_THROW(r.get<std::uint64_t>(), std::out_of_range);
}

TEST(Serde, TruncatedLengthPrefixThrows) {
  Writer w;
  w.put<std::uint32_t>(100);  // claims 100 bytes follow; none do
  Reader r(w.bytes());
  EXPECT_THROW(r.get_bytes(), std::out_of_range);
}

TEST(Serde, RemainingTracksPosition) {
  Writer w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Serde, RawBytesHaveNoPrefix) {
  Writer w;
  w.put_raw(Bytes{1, 2, 3});
  EXPECT_EQ(w.size(), 3u);
}

}  // namespace
}  // namespace dfl
