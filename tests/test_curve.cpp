#include "crypto/curve.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/hash_to_curve.hpp"

namespace dfl::crypto {
namespace {

U256 random_scalar(Rng& rng, const Curve& c) {
  for (;;) {
    U256 v{rng.next(), rng.next(), rng.next(), rng.next()};
    if (v < c.order()) return v;
  }
}

class CurveGroup : public ::testing::TestWithParam<CurveId> {
 protected:
  const Curve& c() const { return Curve::get(GetParam()); }
};

TEST_P(CurveGroup, GeneratorOnCurve) {
  EXPECT_TRUE(c().is_on_curve(c().generator()));
  EXPECT_FALSE(c().generator().infinity);
}

TEST_P(CurveGroup, GeneratorHasGroupOrder) {
  // n * G == O — validates the order constant against the group law.
  const JacobianPoint nG = c().scalar_mul(c().generator(), c().order());
  EXPECT_TRUE(c().is_infinity(nG));
}

TEST_P(CurveGroup, OrderMinusOneIsNegation) {
  U256 nm1 = c().order();
  nm1.sub_assign(U256(1));
  const JacobianPoint p = c().scalar_mul(c().generator(), nm1);
  const JacobianPoint g = c().to_jacobian(c().generator());
  EXPECT_TRUE(c().eq(p, c().neg(g)));
}

TEST_P(CurveGroup, AffineJacobianRoundTrip) {
  Rng rng(21);
  for (int i = 0; i < 10; ++i) {
    const JacobianPoint p = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    const AffinePoint a = c().to_affine(p);
    EXPECT_TRUE(c().is_on_curve(a));
    EXPECT_TRUE(c().eq(c().to_jacobian(a), p));
  }
}

TEST_P(CurveGroup, DoubleMatchesAdd) {
  Rng rng(22);
  for (int i = 0; i < 10; ++i) {
    const JacobianPoint p = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    EXPECT_TRUE(c().eq(c().dbl(p), c().add(p, p)));
  }
}

TEST_P(CurveGroup, AdditionCommutes) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    const JacobianPoint p = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    const JacobianPoint q = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    EXPECT_TRUE(c().eq(c().add(p, q), c().add(q, p)));
  }
}

TEST_P(CurveGroup, AdditionAssociates) {
  Rng rng(24);
  for (int i = 0; i < 5; ++i) {
    const JacobianPoint p = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    const JacobianPoint q = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    const JacobianPoint r = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    EXPECT_TRUE(c().eq(c().add(c().add(p, q), r), c().add(p, c().add(q, r))));
  }
}

TEST_P(CurveGroup, InfinityIsIdentity) {
  Rng rng(25);
  const JacobianPoint p = c().scalar_mul(c().generator(), random_scalar(rng, c()));
  EXPECT_TRUE(c().eq(c().add(p, c().infinity()), p));
  EXPECT_TRUE(c().eq(c().add(c().infinity(), p), p));
  EXPECT_TRUE(c().is_infinity(c().dbl(c().infinity())));
}

TEST_P(CurveGroup, AddOppositeGivesInfinity) {
  Rng rng(26);
  const JacobianPoint p = c().scalar_mul(c().generator(), random_scalar(rng, c()));
  EXPECT_TRUE(c().is_infinity(c().add(p, c().neg(p))));
}

TEST_P(CurveGroup, MixedAddMatchesFullAdd) {
  Rng rng(27);
  for (int i = 0; i < 10; ++i) {
    const JacobianPoint p = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    const JacobianPoint q = c().scalar_mul(c().generator(), random_scalar(rng, c()));
    const AffinePoint qa = c().to_affine(q);
    EXPECT_TRUE(c().eq(c().add_mixed(p, qa), c().add(p, q)));
  }
  // Degenerate operands.
  const AffinePoint ga = c().generator();
  EXPECT_TRUE(c().eq(c().add_mixed(c().infinity(), ga), c().to_jacobian(ga)));
  const JacobianPoint g = c().to_jacobian(ga);
  EXPECT_TRUE(c().eq(c().add_mixed(g, AffinePoint{}), g));
  EXPECT_TRUE(c().eq(c().add_mixed(g, ga), c().dbl(g)));  // P + P branch
}

TEST_P(CurveGroup, ScalarMulDistributesOverScalarAddition) {
  Rng rng(28);
  for (int i = 0; i < 5; ++i) {
    const U256 a = random_scalar(rng, c());
    const U256 b = random_scalar(rng, c());
    const U256 ab = add_mod(a, b, c().order());
    const JacobianPoint lhs = c().scalar_mul(c().generator(), ab);
    const JacobianPoint rhs =
        c().add(c().scalar_mul(c().generator(), a), c().scalar_mul(c().generator(), b));
    EXPECT_TRUE(c().eq(lhs, rhs));
  }
}

TEST_P(CurveGroup, ScalarMulSmallMultiples) {
  JacobianPoint acc = c().infinity();
  for (std::uint64_t k = 0; k <= 20; ++k) {
    EXPECT_TRUE(c().eq(c().scalar_mul(c().generator(), U256(k)), acc)) << "k=" << k;
    acc = c().add_mixed(acc, c().generator());
  }
}

TEST_P(CurveGroup, ScalarMulOfInfinityBase) {
  EXPECT_TRUE(c().is_infinity(c().scalar_mul(AffinePoint{}, U256(12345))));
  EXPECT_TRUE(c().is_infinity(c().scalar_mul(c().generator(), U256(0))));
}

TEST_P(CurveGroup, BatchToAffineMatchesScalarConversion) {
  Rng rng(29);
  std::vector<JacobianPoint> pts;
  for (int i = 0; i < 9; ++i) {
    pts.push_back(c().scalar_mul(c().generator(), random_scalar(rng, c())));
  }
  pts.push_back(c().infinity());  // include an infinity in the batch
  pts.push_back(c().scalar_mul(c().generator(), U256(5)));
  const auto affine = c().batch_to_affine(pts);
  ASSERT_EQ(affine.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const AffinePoint direct = c().to_affine(pts[i]);
    EXPECT_EQ(affine[i].infinity, direct.infinity);
    if (!direct.infinity) {
      EXPECT_EQ(affine[i].x, direct.x);
      EXPECT_EQ(affine[i].y, direct.y);
    }
  }
}

TEST_P(CurveGroup, SerializeRoundTrip) {
  Rng rng(30);
  for (int i = 0; i < 10; ++i) {
    const AffinePoint p = c().to_affine(c().scalar_mul(c().generator(), random_scalar(rng, c())));
    const Bytes enc = c().serialize(p);
    ASSERT_EQ(enc.size(), 33u);
    const AffinePoint q = c().deserialize(enc);
    EXPECT_EQ(p.x, q.x);
    EXPECT_EQ(p.y, q.y);
  }
}

TEST_P(CurveGroup, SerializeInfinity) {
  const Bytes enc = c().serialize(AffinePoint{});
  EXPECT_EQ(enc, Bytes{0x00});
  EXPECT_TRUE(c().deserialize(enc).infinity);
}

TEST_P(CurveGroup, DeserializeRejectsGarbage) {
  EXPECT_THROW((void)c().deserialize(Bytes{}), std::invalid_argument);
  EXPECT_THROW((void)c().deserialize(Bytes{0x05}), std::invalid_argument);
  Bytes bad(33, 0xff);
  bad[0] = 0x02;
  EXPECT_THROW((void)c().deserialize(bad), std::invalid_argument);  // x >= p
}

TEST_P(CurveGroup, SqrtOfSquares) {
  Rng rng(31);
  const FieldCtx& fp = c().fp();
  for (int i = 0; i < 20; ++i) {
    U256 raw{rng.next(), rng.next(), rng.next(), rng.next()};
    while (!(raw < fp.modulus())) raw.sub_assign(fp.modulus());
    const Fe x = fp.to_mont(raw);
    const Fe x2 = fp.sqr(x);
    const auto r = c().sqrt(x2);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(*r == x || *r == fp.neg(x));
  }
}

TEST_P(CurveGroup, SqrtRejectsNonResidue) {
  // x and -x^... : for a residue r, -r is a non-residue iff -1 is a
  // non-residue, which holds for p ≡ 3 (mod 4). So sqrt(neg(square)) fails.
  const FieldCtx& fp = c().fp();
  const Fe x = fp.from_u64(123456789);
  const Fe x2 = fp.sqr(x);
  EXPECT_FALSE(c().sqrt(fp.neg(x2)).has_value());
}

TEST_P(CurveGroup, HashToCurveDeterministicAndOnCurve) {
  const AffinePoint p1 = hash_to_curve(c(), "test-domain", 0);
  const AffinePoint p2 = hash_to_curve(c(), "test-domain", 0);
  EXPECT_TRUE(c().is_on_curve(p1));
  EXPECT_FALSE(p1.infinity);
  EXPECT_EQ(p1.x, p2.x);
  EXPECT_EQ(p1.y, p2.y);
}

TEST_P(CurveGroup, HashToCurveSeparatesDomainsAndIndices) {
  const AffinePoint a = hash_to_curve(c(), "domain-a", 0);
  const AffinePoint b = hash_to_curve(c(), "domain-b", 0);
  const AffinePoint a1 = hash_to_curve(c(), "domain-a", 1);
  EXPECT_FALSE(a.x == b.x);
  EXPECT_FALSE(a.x == a1.x);
}

TEST_P(CurveGroup, DeriveGeneratorsParallelMatchesSerial) {
  // Above the parallel threshold the result must be identical to the
  // serial derivation (same indices, just different thread interleaving).
  const auto gens = derive_generators(c(), "par-check", 5000);
  ASSERT_EQ(gens.size(), 5000u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1234}, std::size_t{4999}}) {
    const AffinePoint direct = hash_to_curve(c(), "par-check", i);
    EXPECT_EQ(gens[i].x, direct.x) << i;
    EXPECT_EQ(gens[i].y, direct.y) << i;
    EXPECT_TRUE(c().is_on_curve(gens[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(BothCurves, CurveGroup,
                         ::testing::Values(CurveId::kSecp256k1, CurveId::kSecp256r1),
                         [](const ::testing::TestParamInfo<CurveId>& info) {
                           return info.param == CurveId::kSecp256k1 ? "secp256k1"
                                                                    : "secp256r1";
                         });

TEST(Curve, KnownScalarMultipleSecp256k1) {
  // 2G on secp256k1 (well-known constant).
  const Curve& c = Curve::secp256k1();
  const AffinePoint two_g = c.to_affine(c.dbl(c.to_jacobian(c.generator())));
  EXPECT_EQ(c.fp().from_mont(two_g.x).to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(c.fp().from_mont(two_g.y).to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Curve, CurvesAreDistinct) {
  EXPECT_NE(&Curve::secp256k1(), &Curve::secp256r1());
  EXPECT_FALSE(Curve::secp256k1().order() == Curve::secp256r1().order());
  EXPECT_EQ(Curve::get(CurveId::kSecp256k1).name(), "secp256k1");
  EXPECT_EQ(Curve::get(CurveId::kSecp256r1).name(), "secp256r1");
}

}  // namespace
}  // namespace dfl::crypto
