// Edge-case coverage for the RoundMetrics summary helpers: empty records,
// all-aborted rounds, and the -1 "never happened" time sentinels. These
// feed both the CLI summaries and the obs histograms, so "no data" must
// come out as a clean 0, never a NaN or a negative delay.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace dfl::core {
namespace {

TEST(RoundMetrics, HelpersOnEmptyRecordsAreZero) {
  RoundMetrics m;
  EXPECT_DOUBLE_EQ(m.mean_upload_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_aggregation_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_aggregation_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_sync_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_aggregator_bytes(), 0.0);
  const ipfs::RetryStats rpc = m.rpc_totals();
  EXPECT_EQ(rpc.attempts, 0u);
  EXPECT_EQ(rpc.retries, 0u);
}

TEST(RoundMetrics, UploadDelaySkipsTrainersWithNoUploads) {
  RoundMetrics m;
  // Aborted before any upload: uploads == 0 must not divide by zero or
  // drag the mean toward 0.
  TrainerRecord aborted;
  aborted.aborted = true;
  m.trainers.push_back(aborted);
  TrainerRecord ok;
  ok.uploads = 2;
  ok.upload_delay_total_s = 3.0;  // per-upload mean 1.5
  m.trainers.push_back(ok);
  EXPECT_DOUBLE_EQ(m.mean_upload_delay_s(), 1.5);

  // All aborted → no contributing trainer → 0, not NaN.
  RoundMetrics all_aborted;
  all_aborted.trainers.assign(3, aborted);
  EXPECT_DOUBLE_EQ(all_aborted.mean_upload_delay_s(), 0.0);
}

TEST(RoundMetrics, AggregationDelayRequiresFirstAnnounce) {
  RoundMetrics m;
  AggregatorRecord a;
  a.gather_done_at = sim::from_seconds(5);
  m.aggregators.push_back(a);
  // No gradient was ever announced (first_gradient_announce == -1): the
  // delay baseline is undefined, so the helpers report 0.
  EXPECT_DOUBLE_EQ(m.mean_aggregation_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_aggregation_delay_s(), 0.0);

  m.note_gradient_announce(sim::from_seconds(2));
  EXPECT_DOUBLE_EQ(m.mean_aggregation_delay_s(), 3.0);
  EXPECT_DOUBLE_EQ(m.total_aggregation_delay_s(), 3.0);
}

TEST(RoundMetrics, NoteGradientAnnounceKeepsEarliest) {
  RoundMetrics m;
  m.note_gradient_announce(sim::from_seconds(4));
  m.note_gradient_announce(sim::from_seconds(2));
  m.note_gradient_announce(sim::from_seconds(9));
  EXPECT_EQ(m.first_gradient_announce, sim::from_seconds(2));
}

TEST(RoundMetrics, TotalAggregationDelayFallsBackToGatherTime) {
  RoundMetrics m;
  m.note_gradient_announce(sim::from_seconds(1));
  // Aggregator that never synchronized (single-agg partition): its gather
  // time stands in for sync in the Figure-2 "total" maximum.
  AggregatorRecord gather_only;
  gather_only.gather_done_at = sim::from_seconds(4);
  m.aggregators.push_back(gather_only);
  AggregatorRecord synced;
  synced.gather_done_at = sim::from_seconds(3);
  synced.sync_done_at = sim::from_seconds(6);
  m.aggregators.push_back(synced);
  // max(4-1, 6-1) = 5.
  EXPECT_DOUBLE_EQ(m.total_aggregation_delay_s(), 5.0);

  // An aggregator that died before gathering (both sentinels -1)
  // contributes nothing rather than a bogus negative delay.
  AggregatorRecord dead;
  m.aggregators.push_back(dead);
  EXPECT_DOUBLE_EQ(m.total_aggregation_delay_s(), 5.0);
}

TEST(RoundMetrics, SyncDelayNeedsBothTimestamps) {
  RoundMetrics m;
  AggregatorRecord no_sync;
  no_sync.gather_done_at = sim::from_seconds(3);  // sync_done_at stays -1
  m.aggregators.push_back(no_sync);
  EXPECT_DOUBLE_EQ(m.mean_sync_delay_s(), 0.0);

  AggregatorRecord synced;
  synced.gather_done_at = sim::from_seconds(3);
  synced.sync_done_at = sim::from_seconds(5);
  m.aggregators.push_back(synced);
  // Only the synced aggregator contributes to the mean.
  EXPECT_DOUBLE_EQ(m.mean_sync_delay_s(), 2.0);
}

TEST(RoundMetrics, RpcTotalsSumTrainersAndAggregators) {
  RoundMetrics m;
  TrainerRecord t;
  t.rpc.attempts = 5;
  t.rpc.retries = 2;
  t.rpc.timeouts = 1;
  m.trainers.push_back(t);
  AggregatorRecord a;
  a.rpc.attempts = 7;
  a.rpc.failovers = 3;
  a.rpc.giveups = 1;
  m.aggregators.push_back(a);

  const ipfs::RetryStats rpc = m.rpc_totals();
  EXPECT_EQ(rpc.attempts, 12u);
  EXPECT_EQ(rpc.retries, 2u);
  EXPECT_EQ(rpc.timeouts, 1u);
  EXPECT_EQ(rpc.failovers, 3u);
  EXPECT_EQ(rpc.giveups, 1u);
}

}  // namespace
}  // namespace dfl::core
