// Block semantics: aliasing (a served block shares the stored buffer),
// copy-on-write (chaos corruption never touches the stored replica or
// concurrent readers), CID caching, and the kDeepCopy emulation mode.
#include <gtest/gtest.h>

#include "ipfs/block.hpp"
#include "ipfs/blockstore.hpp"
#include "ipfs/node.hpp"
#include "ipfs/swarm.hpp"
#include "sim/datapath.hpp"
#include "sim/fault.hpp"

namespace dfl {
namespace {

/// Restores the process-global data-path mode and zeroes the counters so
/// tests cannot leak state into each other.
struct BlockFixture : ::testing::Test {
  void SetUp() override {
    sim::set_datapath_mode(sim::DataPathMode::kZeroCopy);
    sim::reset_datapath_stats();
  }
  void TearDown() override { sim::set_datapath_mode(sim::DataPathMode::kZeroCopy); }
};

TEST_F(BlockFixture, NullBlock) {
  const Block b;
  EXPECT_TRUE(b.is_null());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.cid().is_null());
  EXPECT_EQ(b.use_count(), 0);
}

TEST_F(BlockFixture, HandleCopyAliasesBuffer) {
  const Block a(bytes_of("shared-gradient"));
  const Block b = a;  // handle copy: refcount bump, no byte copy
  EXPECT_TRUE(a.aliases(b));
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.view().data(), a.view().data());
  EXPECT_EQ(sim::datapath_stats().bytes_copied, 0u);
}

TEST_F(BlockFixture, CidIsComputedOnceAndCached) {
  const Block a(bytes_of("hash-me-once"));
  EXPECT_FALSE(a.has_cached_cid());
  const ipfs::Cid& c1 = a.cid();
  EXPECT_TRUE(a.has_cached_cid());
  const ipfs::Cid& c2 = a.cid();
  EXPECT_EQ(c1, c2);
  const auto s = sim::datapath_stats();
  EXPECT_EQ(s.blocks_hashed, 1u);
  EXPECT_EQ(s.cid_cache_hits, 1u);
  // The cache lives on the shared buffer: an aliasing handle sees it too.
  const Block b = a;
  EXPECT_TRUE(b.has_cached_cid());
  (void)b.cid();
  EXPECT_EQ(sim::datapath_stats().cid_cache_hits, 2u);
}

TEST_F(BlockFixture, VerifyUsesCacheAndPopulatesIt) {
  const Bytes data = bytes_of("verify-me");
  const ipfs::Cid cid = ipfs::Cid::of(data);
  const Block fresh(data);
  EXPECT_TRUE(fresh.verify(cid));  // re-hash (no cache yet), then cache
  EXPECT_TRUE(fresh.has_cached_cid());
  EXPECT_EQ(sim::datapath_stats().blocks_hashed, 1u);
  EXPECT_TRUE(fresh.verify(cid));  // answered from the cache
  EXPECT_EQ(sim::datapath_stats().blocks_hashed, 1u);
  EXPECT_EQ(sim::datapath_stats().cid_cache_hits, 1u);
  EXPECT_FALSE(fresh.verify(ipfs::Cid::of(bytes_of("other"))));
}

TEST_F(BlockFixture, MutateCopyLeavesOriginalAndReadersPristine) {
  const Bytes original = bytes_of("pristine-payload");
  const Block stored(original);
  const Block reader = stored;  // a concurrent consumer of the same buffer
  const ipfs::Cid good_cid = stored.cid();

  const Block corrupted = stored.mutate_copy([](Bytes& b) { b[0] ^= 0xff; });

  // CoW: the mutation produced a private buffer; nobody else moved.
  EXPECT_FALSE(corrupted.aliases(stored));
  EXPECT_EQ(stored, original);
  EXPECT_EQ(reader, original);
  EXPECT_NE(corrupted.bytes(), original);

  // The copy has no cached CID; verification re-hashes and fails while the
  // pristine block still verifies from its cache.
  EXPECT_FALSE(corrupted.has_cached_cid());
  EXPECT_FALSE(corrupted.verify(good_cid));
  EXPECT_TRUE(stored.verify(good_cid));
  // The failed verification must not have poisoned the copy's cache.
  EXPECT_FALSE(corrupted.has_cached_cid());
  EXPECT_EQ(corrupted.cid(), ipfs::Cid::of(corrupted.bytes()));
}

TEST_F(BlockFixture, ServeCopySharesInZeroCopyMode) {
  const Block a(Bytes(1024, 7));
  const Block served = a.serve_copy();
  EXPECT_TRUE(served.aliases(a));
  const auto s = sim::datapath_stats();
  EXPECT_EQ(s.bytes_shared, 1024u);
  EXPECT_EQ(s.bytes_copied, 0u);
}

TEST_F(BlockFixture, ServeCopyDeepCopiesInDeepCopyMode) {
  const Block a(Bytes(1024, 7));
  sim::set_datapath_mode(sim::DataPathMode::kDeepCopy);
  const Block served = a.serve_copy();
  EXPECT_FALSE(served.aliases(a));
  EXPECT_EQ(served, a);
  const auto s = sim::datapath_stats();
  EXPECT_EQ(s.bytes_copied, 1024u);
  EXPECT_EQ(s.bytes_shared, 0u);
}

TEST_F(BlockFixture, ResidentBytesTrackAllocAndFree) {
  sim::reset_datapath_stats();
  const std::uint64_t base = sim::datapath_stats().resident_block_bytes;
  {
    const Block a(Bytes(4096, 1));
    EXPECT_EQ(sim::datapath_stats().resident_block_bytes, base + 4096);
    const Block alias = a;  // no new allocation
    EXPECT_EQ(sim::datapath_stats().resident_block_bytes, base + 4096);
    EXPECT_GE(sim::datapath_stats().peak_resident_block_bytes, base + 4096);
  }
  EXPECT_EQ(sim::datapath_stats().resident_block_bytes, base);
}

TEST_F(BlockFixture, BlockStoreGetAliasesStoredBlock) {
  ipfs::BlockStore store;
  const Block block(bytes_of("stored-once"));
  const ipfs::Cid cid = store.put(block);
  const auto got = store.get(cid);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->aliases(block));
  EXPECT_TRUE(got->has_cached_cid());  // put computed and cached the CID
  // peek shares too, but stays out of the accounting.
  const auto before = sim::datapath_stats().bytes_shared;
  const auto peeked = store.peek(cid);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_TRUE(peeked->aliases(block));
  EXPECT_EQ(sim::datapath_stats().bytes_shared, before);
}

/// End-to-end CoW: chaos corruption of a served block must leave the
/// stored replica intact, so a retry (or a second consumer) still gets the
/// correct bytes.
TEST_F(BlockFixture, ChaosCorruptionDoesNotDamageStoredReplica) {
  sim::Simulator sim;
  sim::Network net(sim);
  ipfs::Swarm swarm(net, ipfs::SwarmConfig{0, ipfs::IpfsNodeConfig{}});
  ipfs::IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  sim::Host& client = net.add_host("client", sim::HostConfig{10e6, 10e6, 0});

  const Bytes data = bytes_of("payload-to-corrupt");
  const ipfs::Cid cid = node.put_local(data);

  // A fault hook that corrupts exactly the first served payload.
  struct OneShotCorruptor final : sim::FaultHook {
    int remaining = 1;
    bool should_drop_transfer(const sim::Host&, const sim::Host&) override { return false; }
    double bandwidth_factor(const sim::Host&, const sim::Host&) override { return 1.0; }
    bool should_corrupt_payload(const sim::Host&) override {
      if (remaining == 0) return false;
      --remaining;
      return true;
    }
  } hook;
  net.set_fault_hook(&hook);

  int failures = 0;
  Block second;
  sim.spawn([](ipfs::IpfsNode& n, sim::Host& c, ipfs::Cid id, int& fails,
               Block& out) -> sim::Task<void> {
    try {
      (void)co_await n.get(c, id);  // corrupted delivery: must throw
    } catch (const std::runtime_error&) {
      ++fails;
    }
    out = co_await n.get(c, id);  // replica pristine: must succeed
  }(node, client, cid, failures, second));
  sim.run();
  net.set_fault_hook(nullptr);

  EXPECT_EQ(failures, 1);
  EXPECT_EQ(second, data);
  // And the stored block still verifies (its buffer was never mutated).
  const auto stored = node.store().peek(cid);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(*stored, data);
}

TEST_F(BlockFixture, DeepCopyModeBypassesCidCache) {
  sim::set_datapath_mode(sim::DataPathMode::kDeepCopy);
  sim::reset_datapath_stats();
  const Block a(bytes_of("legacy-hashing"));
  (void)a.cid();
  (void)a.cid();  // hashes again: the legacy plane re-hashed per op
  const auto s = sim::datapath_stats();
  EXPECT_EQ(s.blocks_hashed, 2u);
  EXPECT_EQ(s.cid_cache_hits, 0u);
}

TEST_F(BlockFixture, CopyReductionFactor) {
  sim::DataPathStats s;
  s.bytes_copied = 100;
  s.bytes_shared = 900;
  EXPECT_DOUBLE_EQ(s.copy_reduction_factor(), 10.0);
  s.bytes_copied = 0;
  EXPECT_DOUBLE_EQ(s.copy_reduction_factor(), 900.0);  // all sharing, no copies
}

}  // namespace
}  // namespace dfl
