#include "crypto/engine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "crypto/backend.hpp"

namespace dfl::crypto {
namespace {

std::vector<std::int64_t> sample_gradient(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.uniform_int(-(1 << 20), 1 << 20);
  return v;
}

TEST(Engine, CommitMatchesPlainKey) {
  const Curve& c = Curve::secp256k1();
  PedersenKey plain(c, "engine-test", 64);
  PedersenKey engined(c, "engine-test", 64);
  Engine engine(engined, EngineConfig{.threads = 2, .fixed_base_window = 1});

  const auto v = sample_gradient(64, 7);
  EXPECT_EQ(plain.commit(v), engine.commit(v));
  EXPECT_TRUE(engine.verify(engine.commit(v), v));
}

TEST(Engine, CommitmentsBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion: identical serialized commitments at any
  // concurrency, fixed-base on or off.
  const Curve& c = Curve::secp256k1();
  const auto v = sample_gradient(300, 21);
  std::vector<Commitment> seen;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (const int fb : {0, 1}) {
      PedersenKey key(c, "engine-det", 300);
      Engine engine(key, EngineConfig{.threads = threads, .fixed_base_window = fb});
      seen.push_back(engine.commit(v));
    }
  }
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_EQ(seen[0], seen[i]);
}

TEST(Engine, BatchVerifyAcceptsHonestAndRejectsForged) {
  const Curve& c = Curve::secp256k1();
  PedersenKey key(c, "engine-batch", 32);
  Engine engine(key, EngineConfig{.threads = 2});

  std::vector<Commitment> cs;
  std::vector<std::vector<std::int64_t>> values;
  for (std::uint64_t i = 0; i < 5; ++i) {
    values.push_back(sample_gradient(32, 100 + i));
    cs.push_back(engine.commit(values.back()));
  }
  EXPECT_TRUE(engine.verify_batch(cs, values));

  auto forged = values;
  forged[3][10] += 1;
  EXPECT_FALSE(engine.verify_batch(cs, forged));
  EXPECT_TRUE(engine.verify_batch({}, {}));
  EXPECT_FALSE(engine.verify_batch(cs, {}));  // size mismatch
}

TEST(Engine, BatchVerifyVerdictDeterministicAcrossEngines) {
  // Fiat–Shamir coefficients depend only on the transcript, so two engines
  // (different thread counts) agree — and repeated calls are stable.
  const Curve& c = Curve::secp256r1();
  PedersenKey k1(c, "engine-fs", 16);
  PedersenKey k2(c, "engine-fs", 16);
  Engine e1(k1, EngineConfig{.threads = 1});
  Engine e2(k2, EngineConfig{.threads = 4});

  std::vector<Commitment> cs;
  std::vector<std::vector<std::int64_t>> values;
  for (std::uint64_t i = 0; i < 4; ++i) {
    values.push_back(sample_gradient(16, 55 + i));
    cs.push_back(e1.commit(values[i]));
  }
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_TRUE(e1.verify_batch(cs, values));
    EXPECT_TRUE(e2.verify_batch(cs, values));
  }
}

TEST(Engine, StatsCountOperations) {
  const Curve& c = Curve::secp256k1();
  PedersenKey key(c, "engine-stats", 16);
  Engine engine(key, EngineConfig{.threads = 1});

  const auto v = sample_gradient(16, 3);
  const Commitment cm = engine.commit(v);
  EXPECT_TRUE(engine.verify(cm, v));
  EXPECT_TRUE(engine.verify_batch({cm}, {v}));

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.verifies, 1u);
  EXPECT_EQ(s.batch_verifies, 1u);
  EXPECT_EQ(s.committed_elements, 16u);
}

TEST(Engine, CalibrateReportsPositiveRate) {
  const Curve& c = Curve::secp256k1();
  PedersenKey key(c, "engine-cal", 128);
  Engine engine(key, EngineConfig{.threads = 2, .fixed_base_window = 1});
  const Calibration cal = engine.calibrate(128, 1);
  EXPECT_GT(cal.ns_per_element, 0.0);
  EXPECT_GT(cal.parallel_speedup, 0.0);
  EXPECT_EQ(cal.threads, 2u);
  // Calibration must leave the engine fully functional.
  const auto v = sample_gradient(128, 9);
  EXPECT_TRUE(engine.verify(engine.commit(v), v));
}

TEST(Engine, StatsAndCalibrationReportActiveBackend) {
  const Curve& c = Curve::secp256k1();
  PedersenKey key(c, "engine-backend", 16);
  Engine engine(key, EngineConfig{.threads = 1});
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.backend, active_backend());
  EXPECT_EQ(std::string(s.isa), active_isa());
  const Calibration cal = engine.calibrate(16, 1);
  EXPECT_EQ(cal.backend, active_backend());
  EXPECT_EQ(std::string(cal.isa), active_isa());
}

TEST(Engine, RecalibratesWhenActiveBackendChanges) {
  // A calibration taken under one backend must not be trusted once dispatch
  // lands somewhere else (the ns-per-element model would be off by the SIMD
  // speedup factor). Flipping the override models exactly that.
  const Curve& c = Curve::secp256k1();
  PedersenKey key(c, "engine-recal", 64);
  Engine engine(key, EngineConfig{.threads = 1});
  EXPECT_FALSE(engine.needs_recalibration());  // never calibrated: nothing stale

  (void)engine.calibrate(64, 1);
  EXPECT_FALSE(engine.needs_recalibration());  // fresh under current backend

  const Backend other =
      active_backend() == Backend::kScalar ? Backend::kAvx2 : Backend::kScalar;
  if (!backend_supported(other)) {
    GTEST_SKIP() << "only one backend usable on this host";
  }
  set_backend_override(other);
  EXPECT_TRUE(engine.needs_recalibration());
  const Calibration recal = engine.calibrate(64, 1);
  EXPECT_EQ(recal.backend, other);
  EXPECT_FALSE(engine.needs_recalibration());
  set_backend_override(std::nullopt);
  // Back on the original backend, the recalibration is stale again.
  EXPECT_TRUE(engine.needs_recalibration());
}

TEST(Engine, FixedBaseTablesBuildLazilyAndReportMemory) {
  const Curve& c = Curve::secp256k1();
  PedersenKey key(c, "engine-lazy", 32);
  Engine engine(key, EngineConfig{.threads = 1, .fixed_base_window = 8});
  EXPECT_TRUE(key.fixed_base_enabled());
  EXPECT_EQ(key.fixed_base_tables(), nullptr);  // not built yet
  (void)engine.commit(sample_gradient(32, 1));
  const FixedBaseTables* tables = key.fixed_base_tables();
  ASSERT_NE(tables, nullptr);
  EXPECT_EQ(tables->bases(), 32u);
  EXPECT_EQ(tables->window_bits(), 8);
  EXPECT_GT(tables->memory_bytes(), 0u);
}

TEST(Engine, DetachesPoolOnDestruction) {
  const Curve& c = Curve::secp256k1();
  PedersenKey key(c, "engine-detach", 8);
  {
    Engine engine(key, EngineConfig{.threads = 2});
    EXPECT_NE(key.pool(), nullptr);
  }
  EXPECT_EQ(key.pool(), nullptr);
  // Key still works standalone after the engine is gone.
  const auto v = sample_gradient(8, 2);
  EXPECT_TRUE(key.verify(key.commit(v), v));
}

}  // namespace
}  // namespace dfl::crypto
