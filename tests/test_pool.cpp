#include "common/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dfl {
namespace {

TEST(ThreadPool, ConcurrencyCountsCaller) {
  ThreadPool solo(1);
  EXPECT_EQ(solo.concurrency(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.concurrency(), 4u);
  ThreadPool hw(0);
  EXPECT_GE(hw.concurrency(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  auto f1 = pool.submit([&] { ran.fetch_add(1); });
  auto f2 = pool.submit([&] { ran.fetch_add(1); });
  f1.get();
  f2.get();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, SubmitRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount) {
  // Chunk boundaries must depend only on (begin, end, grain) so per-chunk
  // results combined in chunk order are identical at any concurrency.
  auto boundaries = [](ThreadPool& pool) {
    std::vector<std::pair<std::size_t, std::size_t>> chunks(100);
    pool.parallel_for(
        0, 337,
        [&](std::size_t lo, std::size_t hi) { chunks[lo / 10] = {lo, hi}; }, 10);
    return chunks;
  };
  ThreadPool one(1);
  ThreadPool many(7);
  EXPECT_EQ(boundaries(one), boundaries(many));
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo >= 50) throw std::runtime_error("chunk failed");
                                 },
                                 10),
               std::runtime_error);
  // The pool must stay usable after a failed parallel_for.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    sum.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A chunk issuing its own parallel_for must complete even when all
  // workers are busy: the caller participates in draining its chunks.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 16, [&](std::size_t l2, std::size_t h2) {
        inner_total.fetch_add(static_cast<int>(h2 - l2));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.concurrency(), 1u);
}

TEST(ThreadPool, ParallelForComputesSameSumAsSerial) {
  const std::size_t n = 4096;
  std::vector<std::uint64_t> data(n);
  std::iota(data.begin(), data.end(), 1);
  const std::uint64_t expected = std::accumulate(data.begin(), data.end(), std::uint64_t{0});

  ThreadPool pool(3);
  // Deterministic combination: per-chunk partials summed in chunk order.
  const std::size_t grain = 100;
  std::vector<std::uint64_t> partial((n + grain - 1) / grain, 0);
  pool.parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        std::uint64_t s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += data[i];
        partial[lo / grain] = s;
      },
      grain);
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), std::uint64_t{0}), expected);
}

}  // namespace
}  // namespace dfl
