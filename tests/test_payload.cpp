#include "core/payload.hpp"

#include <gtest/gtest.h>

#include "crypto/encoding.hpp"

namespace dfl::core {
namespace {

TEST(PayloadTest, SerializeRoundTrip) {
  const Payload p{{1, -2, 3000000000LL, 0, 1}};
  const Bytes bytes = p.serialize();
  EXPECT_EQ(bytes.size(), Payload::wire_size(5));
  EXPECT_EQ(Payload::deserialize(bytes), p);
}

TEST(PayloadTest, EmptyPayload) {
  const Payload p{};
  EXPECT_EQ(Payload::deserialize(p.serialize()), p);
  EXPECT_EQ(p.weight(), 0);
}

TEST(PayloadTest, DeserializeRejectsTruncatedElements) {
  const Payload p{{1, 2, 3}};
  Bytes bytes = p.serialize();
  bytes.pop_back();
  EXPECT_THROW((void)Payload::deserialize(bytes), PayloadError);
}

TEST(PayloadTest, DeserializeRejectsTruncatedHeader) {
  const Bytes empty;
  const Bytes short_header{0x01, 0x00};
  EXPECT_THROW((void)Payload::deserialize(empty), PayloadError);
  EXPECT_THROW((void)Payload::deserialize(short_header), PayloadError);
}

TEST(PayloadTest, DeserializeRejectsTrailingBytes) {
  const Payload p{{1, 2, 3}};
  Bytes bytes = p.serialize();
  bytes.push_back(0x00);
  EXPECT_THROW((void)Payload::deserialize(bytes), PayloadError);
}

TEST(PayloadTest, DeserializeRejectsCountOverrun) {
  // Header declares more elements than the buffer carries.
  Bytes bytes = Payload{{1, 2, 3}}.serialize();
  bytes[0] = 0xFF;  // count = 255, but only 3 elements follow
  EXPECT_THROW((void)Payload::deserialize(bytes), PayloadError);
}

TEST(PayloadTest, SerializedSizeFromHeader) {
  const Payload p{{1, -2, 3}};
  const Bytes bytes = p.serialize();
  EXPECT_EQ(p.serialized_size(), bytes.size());
  EXPECT_EQ(Payload::serialized_size(BytesView(bytes)), bytes.size());
  // The static form needs only the 4-byte header, not the full buffer.
  EXPECT_EQ(Payload::serialized_size(BytesView(bytes.data(), 4)), bytes.size());
  EXPECT_THROW((void)Payload::serialized_size(BytesView(bytes.data(), 3)), PayloadError);
}

TEST(PayloadTest, PayloadErrorIsRuntimeError) {
  // Callers catch std::runtime_error at fetch boundaries; the typed error
  // must stay inside that hierarchy (the old contract accidentally threw
  // std::out_of_range through common/serde).
  EXPECT_THROW((void)Payload::deserialize(Bytes{}), std::runtime_error);
}

TEST(PayloadTest, MergerRangeRejectsHeaderMismatch) {
  const PayloadMerger merger;
  const Bytes a = Payload{{1, 2, 1}}.serialize();     // count = 3
  const Bytes b = Payload{{1, 2, 3, 1}}.serialize();  // count = 4
  EXPECT_THROW((void)merger.merge_range({BytesView(a), BytesView(b)}, 0, 4), PayloadError);
}

TEST(PayloadTest, AddIsElementwise) {
  const Payload a{{1, 2, 1}};
  const Payload b{{10, -20, 1}};
  EXPECT_EQ(Payload::add(a, b).values, (std::vector<std::int64_t>{11, -18, 2}));
  EXPECT_THROW((void)Payload::add(a, Payload{{1, 1}}), std::invalid_argument);
}

TEST(PayloadTest, WeightTracksContributors) {
  Payload acc{{0, 0, 0}};
  for (int i = 0; i < 7; ++i) {
    acc = Payload::add(acc, Payload{{crypto::encode_fixed(0.5), crypto::encode_fixed(-1.0), 1}});
  }
  EXPECT_EQ(acc.weight(), 7);
  const auto avg = acc.average(crypto::kDefaultFracBits);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_NEAR(avg[0], 0.5, 1e-9);
  EXPECT_NEAR(avg[1], -1.0, 1e-9);
}

TEST(PayloadTest, AverageRequiresPositiveWeight) {
  const Payload zero_weight{{1, 0}};
  const Payload empty{};
  const Payload weight_only{{5}};
  EXPECT_THROW((void)zero_weight.average(16), std::logic_error);
  EXPECT_THROW((void)empty.average(16), std::logic_error);
  EXPECT_THROW((void)weight_only.average(16), std::logic_error);
}

TEST(PayloadTest, MergerSumsBlocks) {
  PayloadMerger merger;
  const Bytes merged = merger.merge({Payload{{1, 2, 1}}.serialize(),
                                     Payload{{3, 4, 1}}.serialize(),
                                     Payload{{5, 6, 1}}.serialize()});
  EXPECT_EQ(Payload::deserialize(merged).values, (std::vector<std::int64_t>{9, 12, 3}));
}

TEST(PayloadTest, MergerOnEmptyInput) {
  PayloadMerger merger;
  EXPECT_TRUE(Payload::deserialize(merger.merge({})).values.empty());
}

TEST(PayloadTest, WireSizeMatchesPaperScale) {
  // The paper's 1.3 MB partitions correspond to ~170k one-byte... in our
  // encoding 8 bytes per element: 1.3 MB ≈ 162k elements.
  EXPECT_NEAR(static_cast<double>(Payload::wire_size(162'500)), 1.3e6, 1e4);
}

}  // namespace
}  // namespace dfl::core
