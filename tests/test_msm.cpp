#include "crypto/msm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/hash_to_curve.hpp"

namespace dfl::crypto {
namespace {

struct MsmCase {
  CurveId curve;
  std::size_t size;
  int scalar_bits;  // magnitude of scalars to draw
};

class MsmEquivalence : public ::testing::TestWithParam<MsmCase> {};

TEST_P(MsmEquivalence, PippengerMatchesNaive) {
  const auto& [curve_id, size, scalar_bits] = GetParam();
  const Curve& c = Curve::get(curve_id);
  Rng rng(777 + static_cast<std::uint64_t>(size) * 31 + static_cast<std::uint64_t>(scalar_bits));

  const auto points = derive_generators(c, "msm-test", size);
  std::vector<U256> scalars;
  scalars.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    U256 s{rng.next(), rng.next(), rng.next(), rng.next()};
    // Mask down to the requested bit width.
    for (int limb = 0; limb < 4; ++limb) {
      const int lo = limb * 64;
      if (scalar_bits <= lo) {
        s.limb[static_cast<std::size_t>(limb)] = 0;
      } else if (scalar_bits < lo + 64) {
        s.limb[static_cast<std::size_t>(limb)] &= (1ULL << (scalar_bits - lo)) - 1;
      }
    }
    while (!(s < c.order())) s.shr1();
    scalars.push_back(s);
  }

  const JacobianPoint a = msm_naive(c, points, scalars);
  const JacobianPoint b = msm_pippenger(c, points, scalars);
  const JacobianPoint d = msm(c, points, scalars);
  EXPECT_TRUE(c.eq(a, b));
  EXPECT_TRUE(c.eq(a, d));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MsmEquivalence,
    ::testing::Values(MsmCase{CurveId::kSecp256k1, 1, 256}, MsmCase{CurveId::kSecp256k1, 2, 256},
                      MsmCase{CurveId::kSecp256k1, 7, 64},
                      MsmCase{CurveId::kSecp256k1, 33, 256},
                      MsmCase{CurveId::kSecp256k1, 100, 17},
                      MsmCase{CurveId::kSecp256k1, 257, 32},
                      MsmCase{CurveId::kSecp256r1, 33, 256},
                      MsmCase{CurveId::kSecp256r1, 100, 17},
                      MsmCase{CurveId::kSecp256r1, 64, 1}),
    [](const ::testing::TestParamInfo<MsmCase>& info) {
      return (info.param.curve == CurveId::kSecp256k1 ? std::string("k1_") : std::string("r1_")) +
             "n" + std::to_string(info.param.size) + "_b" +
             std::to_string(info.param.scalar_bits);
    });

TEST(Msm, EmptyInputGivesInfinity) {
  const Curve& c = Curve::secp256k1();
  EXPECT_TRUE(c.is_infinity(msm_naive(c, {}, {})));
  EXPECT_TRUE(c.is_infinity(msm_pippenger(c, {}, {})));
}

TEST(Msm, SizeMismatchThrows) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-mismatch", 2);
  EXPECT_THROW((void)msm_naive(c, pts, {U256(1)}), std::invalid_argument);
  EXPECT_THROW((void)msm_pippenger(c, pts, {U256(1)}), std::invalid_argument);
}

TEST(Msm, AllZeroScalars) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-zeros", 20);
  const std::vector<U256> zeros(20, U256{});
  EXPECT_TRUE(c.is_infinity(msm_pippenger(c, pts, zeros)));
}

TEST(Msm, InfinityPointsAreSkipped) {
  const Curve& c = Curve::secp256k1();
  auto pts = derive_generators(c, "msm-inf", 10);
  pts[3] = AffinePoint{};  // infinity
  pts[7] = AffinePoint{};
  std::vector<U256> scalars;
  for (std::uint64_t i = 0; i < 10; ++i) scalars.push_back(U256(i + 1));
  const JacobianPoint a = msm_naive(c, pts, scalars);
  const JacobianPoint b = msm_pippenger(c, pts, scalars);
  EXPECT_TRUE(c.eq(a, b));
}

TEST(Msm, SingleTermMatchesScalarMul) {
  const Curve& c = Curve::secp256r1();
  const AffinePoint g = c.generator();
  const U256 k = U256::from_hex("123456789abcdef0fedcba9876543210");
  const JacobianPoint expected = c.scalar_mul(g, k);
  EXPECT_TRUE(c.eq(msm_naive(c, {g}, {k}), expected));
  EXPECT_TRUE(c.eq(msm_pippenger(c, {g}, {k}), expected));
}

TEST(Msm, LinearityInScalars) {
  // msm(P, s) + msm(P, t) == msm(P, s + t) elementwise (no order overflow).
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-linear", 16);
  Rng rng(99);
  std::vector<U256> s, t, st;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t a = rng.uniform(1ULL << 40);
    const std::uint64_t b = rng.uniform(1ULL << 40);
    s.push_back(U256(a));
    t.push_back(U256(b));
    st.push_back(U256(a + b));
  }
  const JacobianPoint lhs = c.add(msm_pippenger(c, pts, s), msm_pippenger(c, pts, t));
  const JacobianPoint rhs = msm_pippenger(c, pts, st);
  EXPECT_TRUE(c.eq(lhs, rhs));
}

}  // namespace
}  // namespace dfl::crypto
