#include "crypto/msm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/backend.hpp"
#include "crypto/hash_to_curve.hpp"
#include "crypto/pedersen.hpp"

namespace dfl::crypto {
namespace {

struct MsmCase {
  CurveId curve;
  std::size_t size;
  int scalar_bits;  // magnitude of scalars to draw
};

class MsmEquivalence : public ::testing::TestWithParam<MsmCase> {};

TEST_P(MsmEquivalence, PippengerMatchesNaive) {
  const auto& [curve_id, size, scalar_bits] = GetParam();
  const Curve& c = Curve::get(curve_id);
  Rng rng(777 + static_cast<std::uint64_t>(size) * 31 + static_cast<std::uint64_t>(scalar_bits));

  const auto points = derive_generators(c, "msm-test", size);
  std::vector<U256> scalars;
  scalars.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    U256 s{rng.next(), rng.next(), rng.next(), rng.next()};
    // Mask down to the requested bit width.
    for (int limb = 0; limb < 4; ++limb) {
      const int lo = limb * 64;
      if (scalar_bits <= lo) {
        s.limb[static_cast<std::size_t>(limb)] = 0;
      } else if (scalar_bits < lo + 64) {
        s.limb[static_cast<std::size_t>(limb)] &= (1ULL << (scalar_bits - lo)) - 1;
      }
    }
    while (!(s < c.order())) s.shr1();
    scalars.push_back(s);
  }

  const JacobianPoint a = msm_naive(c, points, scalars);
  const JacobianPoint b = msm_pippenger(c, points, scalars);
  const JacobianPoint d = msm(c, points, scalars);
  EXPECT_TRUE(c.eq(a, b));
  EXPECT_TRUE(c.eq(a, d));

  // The SIMD engine (vector backend where usable, its scalar twin
  // otherwise) must land on the same group element, via both the one-shot
  // and the prepared-bases entry points.
  const JacobianPoint e = msm_simd(c, points, scalars);
  EXPECT_TRUE(c.eq(a, e));
  const PreparedBases prepared = PreparedBases::build(c, points);
  EXPECT_EQ(prepared.size(), size);
  EXPECT_TRUE(c.eq(a, msm_simd(c, prepared, scalars)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MsmEquivalence,
    ::testing::Values(MsmCase{CurveId::kSecp256k1, 1, 256}, MsmCase{CurveId::kSecp256k1, 2, 256},
                      MsmCase{CurveId::kSecp256k1, 7, 64},
                      MsmCase{CurveId::kSecp256k1, 33, 256},
                      MsmCase{CurveId::kSecp256k1, 100, 17},
                      MsmCase{CurveId::kSecp256k1, 257, 32},
                      MsmCase{CurveId::kSecp256r1, 33, 256},
                      MsmCase{CurveId::kSecp256r1, 100, 17},
                      MsmCase{CurveId::kSecp256r1, 64, 1}),
    [](const ::testing::TestParamInfo<MsmCase>& info) {
      return (info.param.curve == CurveId::kSecp256k1 ? std::string("k1_") : std::string("r1_")) +
             "n" + std::to_string(info.param.size) + "_b" +
             std::to_string(info.param.scalar_bits);
    });

TEST(Msm, EmptyInputGivesInfinity) {
  const Curve& c = Curve::secp256k1();
  EXPECT_TRUE(c.is_infinity(msm_naive(c, {}, {})));
  EXPECT_TRUE(c.is_infinity(msm_pippenger(c, {}, {})));
}

TEST(Msm, SizeMismatchThrows) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-mismatch", 2);
  EXPECT_THROW((void)msm_naive(c, pts, {U256(1)}), std::invalid_argument);
  EXPECT_THROW((void)msm_pippenger(c, pts, {U256(1)}), std::invalid_argument);
}

TEST(Msm, AllZeroScalars) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-zeros", 20);
  const std::vector<U256> zeros(20, U256{});
  EXPECT_TRUE(c.is_infinity(msm_pippenger(c, pts, zeros)));
}

TEST(Msm, InfinityPointsAreSkipped) {
  const Curve& c = Curve::secp256k1();
  auto pts = derive_generators(c, "msm-inf", 10);
  pts[3] = AffinePoint{};  // infinity
  pts[7] = AffinePoint{};
  std::vector<U256> scalars;
  for (std::uint64_t i = 0; i < 10; ++i) scalars.push_back(U256(i + 1));
  const JacobianPoint a = msm_naive(c, pts, scalars);
  const JacobianPoint b = msm_pippenger(c, pts, scalars);
  EXPECT_TRUE(c.eq(a, b));
}

TEST(Msm, SingleTermMatchesScalarMul) {
  const Curve& c = Curve::secp256r1();
  const AffinePoint g = c.generator();
  const U256 k = U256::from_hex("123456789abcdef0fedcba9876543210");
  const JacobianPoint expected = c.scalar_mul(g, k);
  EXPECT_TRUE(c.eq(msm_naive(c, {g}, {k}), expected));
  EXPECT_TRUE(c.eq(msm_pippenger(c, {g}, {k}), expected));
}

TEST(Msm, DuplicatePointsAccumulate) {
  // The same point appearing many times (with equal and different scalars)
  // must behave exactly like the sum of scalars on one point.
  const Curve& c = Curve::secp256k1();
  const auto gens = derive_generators(c, "msm-dup", 2);
  const std::vector<AffinePoint> pts = {gens[0], gens[1], gens[0], gens[0], gens[1]};
  const std::vector<U256> scalars = {U256(5), U256(7), U256(5), U256(11), U256(2)};
  const JacobianPoint a = msm_naive(c, pts, scalars);
  const JacobianPoint b = msm_pippenger(c, pts, scalars);
  const JacobianPoint expected = c.add(c.scalar_mul(gens[0], U256(5 + 5 + 11)),
                                       c.scalar_mul(gens[1], U256(7 + 2)));
  EXPECT_TRUE(c.eq(a, expected));
  EXPECT_TRUE(c.eq(b, expected));
}

TEST(Msm, MixedScalarBitLengthsInOneCall) {
  // One MSM mixing tiny, mid-size, and near-order scalars: the windowed
  // backends must scan the full range without truncating the large ones.
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-mixed", 6);
  U256 near_order = c.order();
  near_order.sub_assign(U256(1));
  const std::vector<U256> scalars = {
      U256(0), U256(1), U256(0xffff), U256(0, 1, 0, 0),  // 2^64
      U256::from_hex("123456789abcdef0123456789abcdef0"), near_order};
  const JacobianPoint a = msm_naive(c, pts, scalars);
  const JacobianPoint b = msm_pippenger(c, pts, scalars);
  EXPECT_TRUE(c.eq(a, b));
}

TEST(Msm, ParallelMatchesSerialAtAnyPoolSize) {
  const Curve& c = Curve::secp256k1();
  const std::size_t n = 2048;  // above the parallel threshold
  const auto pts = derive_generators(c, "msm-par", n);
  Rng rng(4242);
  std::vector<U256> scalars;
  scalars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scalars.push_back(U256(rng.next() >> 20));

  const JacobianPoint serial = msm(c, pts, scalars);
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    EXPECT_TRUE(c.eq(serial, msm_parallel(c, pts, scalars, pool)))
        << "mismatch at " << threads << " threads";
  }
}

class FixedBase : public ::testing::TestWithParam<int> {};

TEST_P(FixedBase, MatchesPippengerAcrossWindows) {
  const int w = GetParam();
  const Curve& c = Curve::secp256k1();
  const std::size_t n = 64;
  const auto pts = derive_generators(c, "msm-fb", n);
  const auto tables = FixedBaseTables::build(c, pts, w, 34);
  EXPECT_EQ(tables.bases(), n);
  EXPECT_EQ(tables.window_bits(), w);

  Rng rng(1000 + static_cast<std::uint64_t>(w));
  std::vector<U256> scalars;
  for (std::size_t i = 0; i < n; ++i) scalars.push_back(U256(rng.next() & 0x3ffffffffULL));
  scalars[0] = U256{};  // zero scalar
  scalars[1] = U256(1);

  const JacobianPoint expected = msm_pippenger(c, pts, scalars);
  EXPECT_TRUE(c.eq(expected, msm_fixed_base(c, tables, scalars)));
}

INSTANTIATE_TEST_SUITE_P(Windows, FixedBase, ::testing::Values(2, 3, 8, 13),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Msm, FixedBaseNegateMaskSubtracts) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-fb-neg", 4);
  const auto tables = FixedBaseTables::build(c, pts, 4, 16);
  const std::vector<U256> scalars = {U256(3), U256(5), U256(0), U256(9)};
  const std::vector<std::uint8_t> negate = {0, 1, 0, 1};

  // 3*P0 - 5*P1 - 9*P3.
  JacobianPoint expected = c.scalar_mul(pts[0], U256(3));
  expected = c.add(expected, c.neg(c.scalar_mul(pts[1], U256(5))));
  expected = c.add(expected, c.neg(c.scalar_mul(pts[3], U256(9))));
  EXPECT_TRUE(c.eq(expected, msm_fixed_base(c, tables, scalars, &negate)));
}

TEST(Msm, FixedBaseOverflowBeyondCoveredBitsIsExact) {
  // Tables cover only 8 bits; scalars far beyond that must still be exact
  // through the overflow fallback (nothing is ever truncated).
  const Curve& c = Curve::secp256r1();
  const auto pts = derive_generators(c, "msm-fb-ovf", 3);
  const auto tables = FixedBaseTables::build(c, pts, 4, 8);
  const std::vector<U256> scalars = {U256(0xdeadbeefULL),
                                     U256::from_hex("ffffffffffffffffffffffff"), U256(255)};
  const JacobianPoint expected = msm_naive(c, pts, scalars);
  EXPECT_TRUE(c.eq(expected, msm_fixed_base(c, tables, scalars)));

  // And with a negate mask on the overflowing term.
  const std::vector<std::uint8_t> negate = {1, 0, 0};
  JacobianPoint exp2 = c.neg(c.scalar_mul(pts[0], scalars[0]));
  exp2 = c.add(exp2, c.scalar_mul(pts[1], scalars[1]));
  exp2 = c.add(exp2, c.scalar_mul(pts[2], scalars[2]));
  EXPECT_TRUE(c.eq(exp2, msm_fixed_base(c, tables, scalars, &negate)));
}

TEST(Msm, FixedBaseParallelBuildAndRunMatchSerial) {
  const Curve& c = Curve::secp256k1();
  const std::size_t n = 1500;  // above both parallel thresholds
  const auto pts = derive_generators(c, "msm-fb-par", n);
  ThreadPool pool(3);
  const auto serial_tables = FixedBaseTables::build(c, pts, 6, 34);
  const auto parallel_tables = FixedBaseTables::build(c, pts, 6, 34, &pool);
  Rng rng(31337);
  std::vector<U256> scalars;
  std::vector<std::uint8_t> negate;
  for (std::size_t i = 0; i < n; ++i) {
    scalars.push_back(U256(rng.next() & 0xffffffffULL));
    negate.push_back(static_cast<std::uint8_t>(rng.next() & 1));
  }
  const JacobianPoint serial = msm_fixed_base(c, serial_tables, scalars, &negate);
  const JacobianPoint parallel = msm_fixed_base(c, parallel_tables, scalars, &negate, &pool);
  EXPECT_TRUE(c.eq(serial, parallel));
}

TEST(Msm, FixedBasePrefixOfBases) {
  // Fewer scalars than precomputed bases: uses the generator prefix.
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-fb-prefix", 10);
  const auto tables = FixedBaseTables::build(c, pts, 4, 20);
  const std::vector<U256> scalars = {U256(123), U256(456)};
  const std::vector<AffinePoint> prefix(pts.begin(), pts.begin() + 2);
  EXPECT_TRUE(c.eq(msm_naive(c, prefix, scalars), msm_fixed_base(c, tables, scalars)));
  EXPECT_TRUE(c.is_infinity(msm_fixed_base(c, tables, {})));
}

TEST(Msm, FixedBaseRejectsBadInputs) {
  const Curve& k1 = Curve::secp256k1();
  const auto pts = derive_generators(k1, "msm-fb-bad", 2);
  EXPECT_THROW((void)FixedBaseTables::build(k1, pts, 1, 8), std::invalid_argument);
  EXPECT_THROW((void)FixedBaseTables::build(k1, pts, 17, 8), std::invalid_argument);
  const auto tables = FixedBaseTables::build(k1, pts, 4, 8);
  const std::vector<U256> three(3, U256(1));
  EXPECT_THROW((void)msm_fixed_base(k1, tables, three), std::invalid_argument);
  const std::vector<U256> two(2, U256(1));
  const std::vector<std::uint8_t> short_mask(1, 0);
  EXPECT_THROW((void)msm_fixed_base(k1, tables, two, &short_mask), std::invalid_argument);
  EXPECT_THROW((void)msm_fixed_base(Curve::secp256r1(), tables, two), std::invalid_argument);
}

TEST(Msm, PickFixedBaseWindowIsSane) {
  EXPECT_GE(pick_fixed_base_window(1, 34), 2);
  EXPECT_LE(pick_fixed_base_window(1, 34), 16);
  // Larger inputs justify wider windows (monotone non-decreasing).
  EXPECT_LE(pick_fixed_base_window(100, 34), pick_fixed_base_window(100000, 34));
}

TEST(Msm, LinearityInScalars) {
  // msm(P, s) + msm(P, t) == msm(P, s + t) elementwise (no order overflow).
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "msm-linear", 16);
  Rng rng(99);
  std::vector<U256> s, t, st;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t a = rng.uniform(1ULL << 40);
    const std::uint64_t b = rng.uniform(1ULL << 40);
    s.push_back(U256(a));
    t.push_back(U256(b));
    st.push_back(U256(a + b));
  }
  const JacobianPoint lhs = c.add(msm_pippenger(c, pts, s), msm_pippenger(c, pts, t));
  const JacobianPoint rhs = msm_pippenger(c, pts, st);
  EXPECT_TRUE(c.eq(lhs, rhs));
}

// ---------------------------------------------------------------------------
// SIMD engine edge cases. `each_backend` runs the body once per usable
// backend via the dispatch override, so on an AVX2 host every edge case is
// checked against both the vector engine and its scalar twin; on a
// scalar-only host the loop degenerates to one scalar pass.

template <typename Fn>
void each_backend(Fn&& fn) {
  std::vector<Backend> backends{Backend::kScalar};
  if (backend_supported(Backend::kAvx2)) backends.push_back(Backend::kAvx2);
  for (const Backend b : backends) {
    set_backend_override(b);
    fn(b);
  }
  set_backend_override(std::nullopt);
}

TEST(MsmSimd, ZeroScalarsGiveInfinity) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "simd-zeros", 100);
  const std::vector<U256> zeros(100, U256{});
  const std::vector<AffinePoint> no_points;
  const std::vector<U256> no_scalars;
  each_backend([&](Backend b) {
    EXPECT_TRUE(c.is_infinity(msm_simd(c, pts, zeros))) << backend_name(b);
    EXPECT_TRUE(c.is_infinity(msm_simd(c, no_points, no_scalars))) << backend_name(b);
  });
}

TEST(MsmSimd, IdentityPointsAreSkipped) {
  const Curve& c = Curve::secp256k1();
  auto pts = derive_generators(c, "simd-inf", 50);
  pts[0] = AffinePoint{};  // identity at the batch head,
  pts[31] = AffinePoint{};  // at a vector-lane boundary,
  pts[49] = AffinePoint{};  // and at the ragged tail.
  std::vector<U256> scalars;
  for (std::uint64_t i = 0; i < 50; ++i) scalars.push_back(U256(i * 977 + 1));
  const JacobianPoint expected = msm_naive(c, pts, scalars);
  const PreparedBases prepared = PreparedBases::build(c, pts);
  each_backend([&](Backend b) {
    EXPECT_TRUE(c.eq(expected, msm_simd(c, pts, scalars))) << backend_name(b);
    EXPECT_TRUE(c.eq(expected, msm_simd(c, prepared, scalars))) << backend_name(b);
  });
}

TEST(MsmSimd, SingleElementMatchesScalarMul) {
  const Curve& c = Curve::secp256r1();
  const AffinePoint g = c.generator();
  const U256 k = U256::from_hex("fedcba9876543210123456789abcdef0");
  const JacobianPoint expected = c.scalar_mul(g, k);
  each_backend([&](Backend b) {
    EXPECT_TRUE(c.eq(expected, msm_simd(c, {g}, {k}))) << backend_name(b);
  });
}

TEST(MsmSimd, MaxScalarIsExact) {
  // order-1 (== -1 in the scalar group) exercises every window including
  // the signed-digit carry out of the top window.
  for (const CurveId id : {CurveId::kSecp256k1, CurveId::kSecp256r1}) {
    const Curve& c = Curve::get(id);
    const auto pts = derive_generators(c, "simd-max", 40);
    U256 max = c.order();
    max.sub_assign(U256(1));
    std::vector<U256> scalars(40, max);
    scalars[7] = U256{};   // zero among maximal scalars
    scalars[23] = U256(1);
    const JacobianPoint expected = msm_naive(c, pts, scalars);
    each_backend([&](Backend b) {
      EXPECT_TRUE(c.eq(expected, msm_simd(c, pts, scalars)))
          << backend_name(b) << " on " << c.name();
    });
  }
}

TEST(MsmSimd, NegateMaskSubtracts) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "simd-neg", 6);
  const std::vector<U256> scalars = {U256(3), U256(5), U256(0), U256(9), U256(1), U256(70000)};
  const std::vector<std::uint8_t> negate = {0, 1, 1, 1, 0, 1};
  JacobianPoint expected = c.scalar_mul(pts[0], U256(3));
  expected = c.add(expected, c.neg(c.scalar_mul(pts[1], U256(5))));
  expected = c.add(expected, c.neg(c.scalar_mul(pts[3], U256(9))));
  expected = c.add(expected, c.scalar_mul(pts[4], U256(1)));
  expected = c.add(expected, c.neg(c.scalar_mul(pts[5], U256(70000))));
  each_backend([&](Backend b) {
    EXPECT_TRUE(c.eq(expected, msm_simd(c, pts, scalars, &negate))) << backend_name(b);
  });
}

TEST(MsmSimd, RandomizedDifferentialAcrossSizes) {
  // Ragged sizes straddling the vector-lane width and the dispatch
  // thresholds, random full-width scalars, random negate mask.
  const Curve& c = Curve::secp256k1();
  Rng rng(5150);
  for (const std::size_t n : {1u, 3u, 8u, 31u, 32u, 33u, 100u, 300u}) {
    const auto pts = derive_generators(c, "simd-rand" + std::to_string(n), n);
    std::vector<U256> scalars;
    std::vector<std::uint8_t> negate;
    for (std::size_t i = 0; i < n; ++i) {
      U256 s{rng.next(), rng.next(), rng.next(), rng.next()};
      while (!(s < c.order())) s.shr1();
      scalars.push_back(s);
      negate.push_back(static_cast<std::uint8_t>(rng.next() & 1));
    }
    JacobianPoint expected = c.infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const JacobianPoint term = c.scalar_mul(pts[i], scalars[i]);
      expected = c.add(expected, negate[i] != 0 ? c.neg(term) : term);
    }
    each_backend([&](Backend b) {
      EXPECT_TRUE(c.eq(expected, msm_simd(c, pts, scalars, &negate)))
          << backend_name(b) << " n=" << n;
    });
  }
}

TEST(MsmSimd, PreparedBasesPrefixAndReuse) {
  const Curve& c = Curve::secp256k1();
  const auto pts = derive_generators(c, "simd-prefix", 64);
  const PreparedBases prepared = PreparedBases::build(c, pts);
  EXPECT_FALSE(prepared.empty());
  EXPECT_EQ(prepared.size(), 64u);
  EXPECT_EQ(prepared.curve(), CurveId::kSecp256k1);
  Rng rng(616);
  for (const std::size_t n : {1u, 5u, 40u, 64u}) {
    std::vector<U256> scalars;
    for (std::size_t i = 0; i < n; ++i) scalars.push_back(U256(rng.next()));
    const std::vector<AffinePoint> prefix(pts.begin(),
                                          pts.begin() + static_cast<std::ptrdiff_t>(n));
    const JacobianPoint expected = msm_naive(c, prefix, scalars);
    EXPECT_TRUE(c.eq(expected, msm_simd(c, prepared, scalars))) << "prefix n=" << n;
  }
}

TEST(MsmSimd, RejectsBadInputs) {
  const Curve& k1 = Curve::secp256k1();
  const auto pts = derive_generators(k1, "simd-bad", 2);
  const PreparedBases prepared = PreparedBases::build(k1, pts);
  const std::vector<U256> three(3, U256(1));
  EXPECT_THROW((void)msm_simd(k1, prepared, three), std::invalid_argument);
  const std::vector<U256> two(2, U256(1));
  const std::vector<std::uint8_t> short_mask(1, 0);
  EXPECT_THROW((void)msm_simd(k1, prepared, two, &short_mask), std::invalid_argument);
  EXPECT_THROW((void)msm_simd(Curve::secp256r1(), prepared, two), std::invalid_argument);
  EXPECT_THROW((void)msm_simd(k1, PreparedBases{}, two), std::invalid_argument);
  EXPECT_THROW((void)msm_simd(k1, pts, three), std::invalid_argument);
}

TEST(MsmSimd, PedersenCommitmentsAreByteIdenticalAcrossBackends) {
  // The end-to-end guarantee the CI bench gate enforces, in miniature:
  // commit() must produce byte-identical commitments whichever backend the
  // dispatch lands on, including kAuto's cached-bases fast path (>= 32
  // values, no pool).
  PedersenKey key(Curve::secp256k1(), "simd-exact", 64, MsmMode::kAuto);
  Rng rng(2718);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 64; ++i) {
    values.push_back(static_cast<std::int64_t>(rng.next() % 200001) - 100000);
  }
  values[0] = 0;
  std::vector<Commitment> commitments;
  each_backend([&](Backend) { commitments.push_back(key.commit(values)); });
  key.set_mode(MsmMode::kNaive);
  commitments.push_back(key.commit(values));
  for (std::size_t i = 1; i < commitments.size(); ++i) {
    EXPECT_EQ(commitments[0].point, commitments[i].point) << "variant " << i;
    EXPECT_TRUE(key.verify(commitments[i], values));
  }
}

}  // namespace
}  // namespace dfl::crypto
