#include "sim/net.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/fault.hpp"
#include "sim/task.hpp"
#include "sim/timeout.hpp"

namespace dfl::sim {
namespace {

constexpr double kMbps = 1e6;

struct NetFixture : ::testing::Test {
  Simulator sim;
  Network net{sim};

  Host& make_host(const std::string& name, double up_mbps, double down_mbps,
                  TimeNs latency = 0) {
    return net.add_host(name, HostConfig{up_mbps * kMbps, down_mbps * kMbps, latency});
  }

  // Runs one transfer and reports the completion time.
  TimeNs timed_transfer(Host& from, Host& to, std::uint64_t bytes) {
    TimeNs done = -1;
    sim.spawn([](Network& n, Host& f, Host& t, std::uint64_t b, Simulator& s,
                 TimeNs& out) -> Task<void> {
      co_await n.transfer(f, t, b);
      out = s.now();
    }(net, from, to, bytes, sim, done));
    sim.run();
    return done;
  }
};

TEST_F(NetFixture, TransferTimeMatchesBandwidth) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  // 10 Mbps, 1.25 MB = 10 Mbit -> 1 second.
  const TimeNs done = timed_transfer(a, b, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 1.0, 1e-9);
}

TEST_F(NetFixture, BottleneckIsMinOfUpAndDown) {
  net.set_per_message_overhead(0);
  Host& fast_up = make_host("fast_up", 100, 10);
  Host& slow_down = make_host("slow_down", 100, 5);
  // min(100 up, 5 down) = 5 Mbps; 1.25 MB -> 2 seconds.
  const TimeNs done = timed_transfer(fast_up, slow_down, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 2.0, 1e-9);
}

TEST_F(NetFixture, LatencyAddsToCompletion) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10, from_millis(30));
  Host& b = make_host("b", 10, 10, from_millis(20));
  const TimeNs done = timed_transfer(a, b, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 1.05, 1e-9);  // 1s + 30ms + 20ms
}

TEST_F(NetFixture, OverheadCountsOnWire) {
  net.set_per_message_overhead(1'250'000);  // pathological, for visibility
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  const TimeNs done = timed_transfer(a, b, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 2.0, 1e-9);
}

TEST_F(NetFixture, ConcurrentUploadsSerializeAtReceiverDownlink) {
  net.set_per_message_overhead(0);
  Host& node = make_host("node", 10, 10);
  std::vector<Host*> trainers;
  for (int i = 0; i < 4; ++i) trainers.push_back(&make_host("t" + std::to_string(i), 10, 10));

  std::vector<TimeNs> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
      co_await n.transfer(f, t, 1'250'000);
      out = s.now();
    }(net, *trainers[static_cast<std::size_t>(i)], node, sim, done[static_cast<std::size_t>(i)]));
  }
  sim.run();
  // The node's 10 Mbps downlink admits one 1-second transfer at a time.
  std::sort(done.begin(), done.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(to_seconds(done[static_cast<std::size_t>(i)]), i + 1.0, 1e-9);
  }
}

TEST_F(NetFixture, ParallelDisjointPathsDoNotInterfere) {
  net.set_per_message_overhead(0);
  Host& a1 = make_host("a1", 10, 10);
  Host& b1 = make_host("b1", 10, 10);
  Host& a2 = make_host("a2", 10, 10);
  Host& b2 = make_host("b2", 10, 10);
  TimeNs d1 = -1, d2 = -1;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, a1, b1, sim, d1));
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, a2, b2, sim, d2));
  sim.run();
  EXPECT_NEAR(to_seconds(d1), 1.0, 1e-9);
  EXPECT_NEAR(to_seconds(d2), 1.0, 1e-9);
}

TEST_F(NetFixture, SenderUplinkAlsoSerializes) {
  net.set_per_message_overhead(0);
  Host& src = make_host("src", 10, 10);
  Host& d1 = make_host("d1", 100, 100);
  Host& d2 = make_host("d2", 100, 100);
  TimeNs t1 = -1, t2 = -1;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, src, d1, sim, t1));
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, src, d2, sim, t2));
  sim.run();
  std::vector<double> times{to_seconds(t1), to_seconds(t2)};
  std::sort(times.begin(), times.end());
  EXPECT_NEAR(times[0], 1.0, 1e-9);
  EXPECT_NEAR(times[1], 2.0, 1e-9);
}

TEST_F(NetFixture, ByteCountersTrackTraffic) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  (void)timed_transfer(a, b, 1000);
  EXPECT_EQ(a.bytes_sent(), 1000u);
  EXPECT_EQ(b.bytes_received(), 1000u);
  EXPECT_EQ(a.bytes_received(), 0u);
  EXPECT_EQ(net.total_bytes_transferred(), 1000u);
  a.reset_counters();
  EXPECT_EQ(a.bytes_sent(), 0u);
}

TEST_F(NetFixture, DownedEndpointThrows) {
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  b.set_up(false);
  bool threw = false;
  sim.spawn([](Network& n, Host& f, Host& t, bool& out) -> Task<void> {
    try {
      co_await n.transfer(f, t, 100);
    } catch (const NetworkError&) {
      out = true;
    }
  }(net, a, b, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST_F(NetFixture, ReceiverDyingMidFlightFailsAtCrashTime) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  bool threw = false;
  TimeNs failed_at = -1;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, bool& out,
               TimeNs& at) -> Task<void> {
    try {
      co_await n.transfer(f, t, 1'250'000);  // takes 1 s
    } catch (const NetworkError&) {
      out = true;
      at = s.now();
    }
  }(net, a, b, sim, threw, failed_at));
  sim.schedule_at(from_seconds(0.5), [&] { b.set_up(false); });
  sim.run();
  EXPECT_TRUE(threw);
  // The failure fires when the endpoint crashes, not at would-be delivery.
  EXPECT_NEAR(to_seconds(failed_at), 0.5, 1e-9);
  EXPECT_EQ(net.mid_transfer_failures(), 1u);
}

TEST_F(NetFixture, SenderDyingMidFlightAlsoFails) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  bool threw = false;
  sim.spawn([](Network& n, Host& f, Host& t, bool& out) -> Task<void> {
    try {
      co_await n.transfer(f, t, 1'250'000);
    } catch (const NetworkError&) {
      out = true;
    }
  }(net, a, b, threw));
  sim.schedule_at(from_seconds(0.25), [&] { a.set_up(false); });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST_F(NetFixture, CrashOnlyFailsTransfersTouchingTheHost) {
  net.set_per_message_overhead(0);
  Host& a1 = make_host("a1", 10, 10);
  Host& b1 = make_host("b1", 10, 10);
  Host& a2 = make_host("a2", 10, 10);
  Host& b2 = make_host("b2", 10, 10);
  bool failed1 = false, ok2 = false;
  sim.spawn([](Network& n, Host& f, Host& t, bool& out) -> Task<void> {
    try {
      co_await n.transfer(f, t, 1'250'000);
    } catch (const NetworkError&) {
      out = true;
    }
  }(net, a1, b1, failed1));
  sim.spawn([](Network& n, Host& f, Host& t, bool& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = true;
  }(net, a2, b2, ok2));
  sim.schedule_at(from_seconds(0.5), [&] { b1.set_up(false); });
  sim.run();
  EXPECT_TRUE(failed1);
  EXPECT_TRUE(ok2);
}

TEST_F(NetFixture, WithTimeoutCompletesFastTask) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  bool completed = false;
  TimeNs done_at = -1;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, bool& out,
               TimeNs& at) -> Task<void> {
    out = co_await with_timeout(s, n.transfer(f, t, 1'250'000), from_seconds(5));
    at = s.now();
  }(net, a, b, sim, completed, done_at));
  sim.run();  // drains the (stale) deadline event too; check the recorded time
  EXPECT_TRUE(completed);
  EXPECT_NEAR(to_seconds(done_at), 1.0, 1e-9);
}

TEST_F(NetFixture, WithTimeoutAbandonsSlowTask) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  bool completed = true;
  TimeNs resumed_at = -1;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, bool& out,
               TimeNs& at) -> Task<void> {
    out = co_await with_timeout(s, n.transfer(f, t, 12'500'000), from_seconds(2));  // 10 s
    at = s.now();
  }(net, a, b, sim, completed, resumed_at));
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_NEAR(to_seconds(resumed_at), 2.0, 1e-9);  // resumed at the deadline
}

TEST_F(NetFixture, WithTimeoutPropagatesTaskError) {
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  b.set_up(false);
  bool threw = false;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, bool& out) -> Task<void> {
    try {
      (void)co_await with_timeout(s, n.transfer(f, t, 100), from_seconds(5));
    } catch (const NetworkError&) {
      out = true;
    }
  }(net, a, b, sim, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST_F(NetFixture, WithTimeoutValueTask) {
  auto make_value = [](Simulator& s, TimeNs delay) -> Task<int> {
    co_await s.sleep(delay);
    co_return 42;
  };
  std::optional<int> fast, slow;
  sim.spawn([](Simulator& s, Task<int> t, std::optional<int>& out) -> Task<void> {
    out = co_await with_timeout(s, std::move(t), from_seconds(1));
  }(sim, make_value(sim, from_millis(100)), fast));
  sim.run();
  sim.spawn([](Simulator& s, Task<int> t, std::optional<int>& out) -> Task<void> {
    out = co_await with_timeout(s, std::move(t), from_seconds(1));
  }(sim, make_value(sim, from_seconds(10)), slow));
  sim.run();
  EXPECT_EQ(fast, 42);
  EXPECT_FALSE(slow.has_value());
}

TEST_F(NetFixture, FaultInjectorCrashWindowsFollowThePlan) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{b.id(), from_seconds(1), from_seconds(3)});
  FaultInjector injector(net, plan);
  injector.arm();
  sim.run_until(from_seconds(2));
  EXPECT_TRUE(a.is_up());
  EXPECT_FALSE(b.is_up());
  sim.run_until(from_seconds(4));
  EXPECT_TRUE(b.is_up());
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
}

TEST_F(NetFixture, FaultInjectorDropsTransfersDeterministically) {
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  FaultPlan plan;
  plan.transfer_failure_prob = 0.5;
  plan.seed = 7;
  FaultInjector injector(net, plan);
  injector.arm();
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    sim.spawn([](Network& n, Host& f, Host& t, int& out) -> Task<void> {
      try {
        co_await n.transfer(f, t, 100);
      } catch (const NetworkError&) {
        ++out;
      }
    }(net, a, b, failures));
    sim.run();
  }
  EXPECT_GT(failures, 10);
  EXPECT_LT(failures, 40);
  EXPECT_EQ(static_cast<std::uint64_t>(failures), injector.stats().transfers_dropped);
  EXPECT_EQ(net.transfers_dropped(), injector.stats().transfers_dropped);
}

TEST_F(NetFixture, DegradationWindowSlowsTransfers) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  FaultPlan plan;
  // Quarter bandwidth on b for the first minute.
  plan.degradations.push_back(DegradeWindow{b.id(), 0, from_seconds(60), 0.25});
  FaultInjector injector(net, plan);
  injector.arm();
  // 1.25 MB at 2.5 Mbps effective -> 4 s instead of 1 s.
  const TimeNs done = timed_transfer(a, b, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 4.0, 1e-9);
}

TEST_F(NetFixture, HostRegistry) {
  Host& a = make_host("alpha", 1, 1);
  Host& b = make_host("beta", 1, 1);
  EXPECT_EQ(net.host_count(), 2u);
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_EQ(net.host(0).name(), "alpha");
  EXPECT_EQ(net.host(1).name(), "beta");
}

TEST_F(NetFixture, TraceRecordsTransfers) {
  net.set_per_message_overhead(0);
  net.set_tracing(true);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  (void)timed_transfer(a, b, 1'250'000);
  (void)timed_transfer(b, a, 2'500'000);
  ASSERT_EQ(net.trace().size(), 2u);
  const auto& r0 = net.trace()[0];
  EXPECT_EQ(r0.from, a.id());
  EXPECT_EQ(r0.to, b.id());
  EXPECT_EQ(r0.wire_bytes, 1'250'000u);
  EXPECT_NEAR(to_seconds(r0.delivered - r0.start), 1.0, 1e-9);
  EXPECT_EQ(net.trace()[1].wire_bytes, 2'500'000u);
  net.clear_trace();
  EXPECT_TRUE(net.trace().empty());
}

TEST_F(NetFixture, TraceRingBufferCapsGrowth) {
  net.set_per_message_overhead(0);
  net.set_tracing(true);
  net.set_trace_limit(3);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    (void)timed_transfer(a, b, 1000 * i);
  }
  // Only the newest 3 records are retained; the 2 oldest were overwritten.
  ASSERT_EQ(net.trace().size(), 3u);
  EXPECT_EQ(net.trace().dropped(), 2u);
  EXPECT_EQ(net.trace()[0].wire_bytes, 3000u);  // chronological indexing
  EXPECT_EQ(net.trace()[1].wire_bytes, 4000u);
  EXPECT_EQ(net.trace()[2].wire_bytes, 5000u);
  // Range-for iterates the same chronological window.
  std::uint64_t expect = 3000;
  for (const auto& r : net.trace()) {
    EXPECT_EQ(r.wire_bytes, expect);
    expect += 1000;
  }
}

TEST_F(NetFixture, TracingInstallsDefaultCapOnlyWhenUnset) {
  // Enabling tracing with no limit set installs the default cap…
  net.set_tracing(true);
  EXPECT_EQ(net.trace().capacity(), Network::kDefaultTraceCapacity);
  // …but a limit chosen before enabling is respected, not overwritten.
  Network other{sim};
  other.set_trace_limit(7);
  other.set_tracing(true);
  EXPECT_EQ(other.trace().capacity(), 7u);
  // And re-enabling never stomps a later explicit choice.
  net.set_trace_limit(123);
  net.set_tracing(true);
  EXPECT_EQ(net.trace().capacity(), 123u);
}

TEST_F(NetFixture, TraceLimitShrinkKeepsNewestRecords) {
  net.set_per_message_overhead(0);
  net.set_tracing(true);  // default cap (65536) is far above this test's 5
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    (void)timed_transfer(a, b, 1000 * i);
  }
  EXPECT_EQ(net.trace().size(), 5u);
  net.set_trace_limit(2);  // shrink below current size
  ASSERT_EQ(net.trace().size(), 2u);
  EXPECT_EQ(net.trace().dropped(), 3u);
  EXPECT_EQ(net.trace()[0].wire_bytes, 4000u);
  EXPECT_EQ(net.trace()[1].wire_bytes, 5000u);
  // The shrunk ring keeps rolling correctly.
  (void)timed_transfer(a, b, 6000);
  ASSERT_EQ(net.trace().size(), 2u);
  EXPECT_EQ(net.trace()[0].wire_bytes, 5000u);
  EXPECT_EQ(net.trace()[1].wire_bytes, 6000u);
}

TEST_F(NetFixture, TracingOffByDefault) {
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  (void)timed_transfer(a, b, 100);
  EXPECT_TRUE(net.trace().empty());
}

TEST_F(NetFixture, TraceShowsQueueingDelay) {
  net.set_per_message_overhead(0);
  net.set_tracing(true);
  Host& node = make_host("node", 10, 10);
  Host& t1 = make_host("t1", 10, 10);
  Host& t2 = make_host("t2", 10, 10);
  sim.spawn([](Network& n, Host& f, Host& t) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
  }(net, t1, node));
  sim.spawn([](Network& n, Host& f, Host& t) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
  }(net, t2, node));
  sim.run();
  ASSERT_EQ(net.trace().size(), 2u);
  // The second transfer queued behind the first on the node's downlink.
  EXPECT_EQ(net.trace()[1].issued_at, 0);
  EXPECT_NEAR(to_seconds(net.trace()[1].start), 1.0, 1e-9);
}

TEST_F(NetFixture, AsymmetricLinksUseDirectionalCapacity) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 20, 5);  // fast up, slow down
  Host& b = make_host("b", 5, 20);  // slow up, fast down
  // a->b: min(20 up, 20 down) = 20 Mbps -> 0.5s for 1.25MB.
  EXPECT_NEAR(to_seconds(timed_transfer(a, b, 1'250'000)), 0.5, 1e-9);
  // b->a: min(5, 5) = 5 Mbps -> 2s (starting from current now).
  const TimeNs start = sim.now();
  const TimeNs done = timed_transfer(b, a, 1'250'000);
  EXPECT_NEAR(to_seconds(done - start), 2.0, 1e-9);
}

TEST_F(NetFixture, MinPathLatencySumsTwoSmallest) {
  EXPECT_EQ(net.min_path_latency(), 0);  // < 2 hosts: no pair, no bound
  make_host("a", 10, 10, 500);
  EXPECT_EQ(net.min_path_latency(), 0);
  make_host("b", 10, 10, 300);
  make_host("c", 10, 10, 900);
  EXPECT_EQ(net.min_path_latency(), 800);  // 300 + 500, ignoring c
}

TEST_F(NetFixture, MinCrossShardLatencyUsesDistinctShards) {
  Host& a = make_host("a", 10, 10, 100);  // shard 0
  make_host("b", 10, 10, 200);            // shard 0
  make_host("c", 10, 10, 5000);           // shard 1
  make_host("d", 10, 10, 4000);           // shard 1
  ShardPlacement p;
  p.shards = 2;
  p.shard_of = {0, 0, 1, 1};
  // Cheapest pair within one shard is 100+200, but the cross-shard bound
  // must pair minima from *different* shards: 100 + 4000.
  EXPECT_EQ(net.min_cross_shard_latency(p), 4100);

  // Every host on one shard: no cross-shard path exists.
  ShardPlacement all_one;
  all_one.shards = 2;
  all_one.shard_of = {0, 0, 0, 0};
  EXPECT_EQ(net.min_cross_shard_latency(all_one), Simulator::kNoEvent);
  (void)a;
}

TEST(FaultLookahead, DistributionFloorPerKind) {
  EXPECT_EQ(Distribution::constant(3.5).floor(), 3.5);
  EXPECT_EQ((Distribution{Distribution::Kind::kUniform, 2.0, 9.0}).floor(), 2.0);
  EXPECT_EQ((Distribution{Distribution::Kind::kPareto, 1.5, 2.0}).floor(), 1.5);
  // Unbounded-below kinds (clamped at 0) contribute no positive floor.
  EXPECT_EQ((Distribution{Distribution::Kind::kNormal, 10.0, 1.0}).floor(), 0.0);
  EXPECT_EQ((Distribution{Distribution::Kind::kExponential, 10.0, 0.0}).floor(), 0.0);
  EXPECT_EQ((Distribution{Distribution::Kind::kLogNormal, 10.0, 1.0}).floor(), 0.0);
}

TEST(FaultLookahead, PlanFloorNeedsCertainJitter) {
  FaultPlan plan;
  plan.latency_jitter_ms = Distribution::constant(4.0);
  plan.latency_jitter_prob = 0.9;  // may not fire: floor must stay 0
  EXPECT_EQ(plan.latency_floor_ns(), 0);
  plan.latency_jitter_prob = 1.0;
  EXPECT_EQ(plan.latency_floor_ns(), from_millis(4.0));
}

TEST(FaultLookahead, SplitByShardRoutesWindowsAndForksSeeds) {
  FaultPlan plan;
  plan.seed = 7;
  plan.transfer_failure_prob = 0.25;
  plan.crashes.push_back({0, 100, 200});
  plan.crashes.push_back({3, 300, 400});
  plan.degradations.push_back(DegradeWindow{1, 500, 600});
  ShardPlacement p;
  p.shards = 2;
  p.shard_of = {0, 0, 1, 1};
  const std::vector<FaultPlan> split = plan.split_by_shard(p);
  ASSERT_EQ(split.size(), 2u);
  ASSERT_EQ(split[0].crashes.size(), 1u);
  EXPECT_EQ(split[0].crashes[0].host_id, 0u);
  ASSERT_EQ(split[1].crashes.size(), 1u);
  EXPECT_EQ(split[1].crashes[0].host_id, 3u);
  EXPECT_EQ(split[0].degradations.size(), 1u);
  EXPECT_TRUE(split[1].degradations.empty());
  // Per-transfer probabilities replicate; seeds fork per shard.
  EXPECT_EQ(split[0].transfer_failure_prob, 0.25);
  EXPECT_EQ(split[1].transfer_failure_prob, 0.25);
  EXPECT_NE(split[0].seed, split[1].seed);
  EXPECT_NE(split[0].seed, plan.seed);
}

TEST_F(NetFixture, ShardPlacementClassifiesTransfers) {
  Host& a = make_host("a", 100, 100, 0);
  Host& b = make_host("b", 100, 100, 0);
  Host& c = make_host("c", 100, 100, 0);
  ShardPlacement p;
  p.shards = 2;
  p.shard_of = {0, 0, 1};
  net.set_shard_placement(&p);
  timed_transfer(a, b, 1000);  // same shard
  timed_transfer(a, c, 1000);  // crosses
  EXPECT_EQ(net.local_shard_transfers(), 1u);
  EXPECT_EQ(net.cross_shard_transfers(), 1u);
}

}  // namespace
}  // namespace dfl::sim
