#include "sim/net.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/task.hpp"

namespace dfl::sim {
namespace {

constexpr double kMbps = 1e6;

struct NetFixture : ::testing::Test {
  Simulator sim;
  Network net{sim};

  Host& make_host(const std::string& name, double up_mbps, double down_mbps,
                  TimeNs latency = 0) {
    return net.add_host(name, HostConfig{up_mbps * kMbps, down_mbps * kMbps, latency});
  }

  // Runs one transfer and reports the completion time.
  TimeNs timed_transfer(Host& from, Host& to, std::uint64_t bytes) {
    TimeNs done = -1;
    sim.spawn([](Network& n, Host& f, Host& t, std::uint64_t b, Simulator& s,
                 TimeNs& out) -> Task<void> {
      co_await n.transfer(f, t, b);
      out = s.now();
    }(net, from, to, bytes, sim, done));
    sim.run();
    return done;
  }
};

TEST_F(NetFixture, TransferTimeMatchesBandwidth) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  // 10 Mbps, 1.25 MB = 10 Mbit -> 1 second.
  const TimeNs done = timed_transfer(a, b, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 1.0, 1e-9);
}

TEST_F(NetFixture, BottleneckIsMinOfUpAndDown) {
  net.set_per_message_overhead(0);
  Host& fast_up = make_host("fast_up", 100, 10);
  Host& slow_down = make_host("slow_down", 100, 5);
  // min(100 up, 5 down) = 5 Mbps; 1.25 MB -> 2 seconds.
  const TimeNs done = timed_transfer(fast_up, slow_down, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 2.0, 1e-9);
}

TEST_F(NetFixture, LatencyAddsToCompletion) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10, from_millis(30));
  Host& b = make_host("b", 10, 10, from_millis(20));
  const TimeNs done = timed_transfer(a, b, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 1.05, 1e-9);  // 1s + 30ms + 20ms
}

TEST_F(NetFixture, OverheadCountsOnWire) {
  net.set_per_message_overhead(1'250'000);  // pathological, for visibility
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  const TimeNs done = timed_transfer(a, b, 1'250'000);
  EXPECT_NEAR(to_seconds(done), 2.0, 1e-9);
}

TEST_F(NetFixture, ConcurrentUploadsSerializeAtReceiverDownlink) {
  net.set_per_message_overhead(0);
  Host& node = make_host("node", 10, 10);
  std::vector<Host*> trainers;
  for (int i = 0; i < 4; ++i) trainers.push_back(&make_host("t" + std::to_string(i), 10, 10));

  std::vector<TimeNs> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
      co_await n.transfer(f, t, 1'250'000);
      out = s.now();
    }(net, *trainers[static_cast<std::size_t>(i)], node, sim, done[static_cast<std::size_t>(i)]));
  }
  sim.run();
  // The node's 10 Mbps downlink admits one 1-second transfer at a time.
  std::sort(done.begin(), done.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(to_seconds(done[static_cast<std::size_t>(i)]), i + 1.0, 1e-9);
  }
}

TEST_F(NetFixture, ParallelDisjointPathsDoNotInterfere) {
  net.set_per_message_overhead(0);
  Host& a1 = make_host("a1", 10, 10);
  Host& b1 = make_host("b1", 10, 10);
  Host& a2 = make_host("a2", 10, 10);
  Host& b2 = make_host("b2", 10, 10);
  TimeNs d1 = -1, d2 = -1;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, a1, b1, sim, d1));
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, a2, b2, sim, d2));
  sim.run();
  EXPECT_NEAR(to_seconds(d1), 1.0, 1e-9);
  EXPECT_NEAR(to_seconds(d2), 1.0, 1e-9);
}

TEST_F(NetFixture, SenderUplinkAlsoSerializes) {
  net.set_per_message_overhead(0);
  Host& src = make_host("src", 10, 10);
  Host& d1 = make_host("d1", 100, 100);
  Host& d2 = make_host("d2", 100, 100);
  TimeNs t1 = -1, t2 = -1;
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, src, d1, sim, t1));
  sim.spawn([](Network& n, Host& f, Host& t, Simulator& s, TimeNs& out) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
    out = s.now();
  }(net, src, d2, sim, t2));
  sim.run();
  std::vector<double> times{to_seconds(t1), to_seconds(t2)};
  std::sort(times.begin(), times.end());
  EXPECT_NEAR(times[0], 1.0, 1e-9);
  EXPECT_NEAR(times[1], 2.0, 1e-9);
}

TEST_F(NetFixture, ByteCountersTrackTraffic) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  (void)timed_transfer(a, b, 1000);
  EXPECT_EQ(a.bytes_sent(), 1000u);
  EXPECT_EQ(b.bytes_received(), 1000u);
  EXPECT_EQ(a.bytes_received(), 0u);
  EXPECT_EQ(net.total_bytes_transferred(), 1000u);
  a.reset_counters();
  EXPECT_EQ(a.bytes_sent(), 0u);
}

TEST_F(NetFixture, DownedEndpointThrows) {
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  b.set_up(false);
  bool threw = false;
  sim.spawn([](Network& n, Host& f, Host& t, bool& out) -> Task<void> {
    try {
      co_await n.transfer(f, t, 100);
    } catch (const NetworkError&) {
      out = true;
    }
  }(net, a, b, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST_F(NetFixture, ReceiverDyingMidFlightThrowsAtDelivery) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  bool threw = false;
  sim.spawn([](Network& n, Host& f, Host& t, bool& out) -> Task<void> {
    try {
      co_await n.transfer(f, t, 1'250'000);  // takes 1 s
    } catch (const NetworkError&) {
      out = true;
    }
  }(net, a, b, threw));
  sim.schedule_at(from_seconds(0.5), [&] { b.set_up(false); });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST_F(NetFixture, HostRegistry) {
  Host& a = make_host("alpha", 1, 1);
  Host& b = make_host("beta", 1, 1);
  EXPECT_EQ(net.host_count(), 2u);
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_EQ(net.host(0).name(), "alpha");
  EXPECT_EQ(net.host(1).name(), "beta");
}

TEST_F(NetFixture, TraceRecordsTransfers) {
  net.set_per_message_overhead(0);
  net.set_tracing(true);
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  (void)timed_transfer(a, b, 1'250'000);
  (void)timed_transfer(b, a, 2'500'000);
  ASSERT_EQ(net.trace().size(), 2u);
  const auto& r0 = net.trace()[0];
  EXPECT_EQ(r0.from, a.id());
  EXPECT_EQ(r0.to, b.id());
  EXPECT_EQ(r0.wire_bytes, 1'250'000u);
  EXPECT_NEAR(to_seconds(r0.delivered - r0.start), 1.0, 1e-9);
  EXPECT_EQ(net.trace()[1].wire_bytes, 2'500'000u);
  net.clear_trace();
  EXPECT_TRUE(net.trace().empty());
}

TEST_F(NetFixture, TracingOffByDefault) {
  Host& a = make_host("a", 10, 10);
  Host& b = make_host("b", 10, 10);
  (void)timed_transfer(a, b, 100);
  EXPECT_TRUE(net.trace().empty());
}

TEST_F(NetFixture, TraceShowsQueueingDelay) {
  net.set_per_message_overhead(0);
  net.set_tracing(true);
  Host& node = make_host("node", 10, 10);
  Host& t1 = make_host("t1", 10, 10);
  Host& t2 = make_host("t2", 10, 10);
  sim.spawn([](Network& n, Host& f, Host& t) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
  }(net, t1, node));
  sim.spawn([](Network& n, Host& f, Host& t) -> Task<void> {
    co_await n.transfer(f, t, 1'250'000);
  }(net, t2, node));
  sim.run();
  ASSERT_EQ(net.trace().size(), 2u);
  // The second transfer queued behind the first on the node's downlink.
  EXPECT_EQ(net.trace()[1].issued_at, 0);
  EXPECT_NEAR(to_seconds(net.trace()[1].start), 1.0, 1e-9);
}

TEST_F(NetFixture, AsymmetricLinksUseDirectionalCapacity) {
  net.set_per_message_overhead(0);
  Host& a = make_host("a", 20, 5);  // fast up, slow down
  Host& b = make_host("b", 5, 20);  // slow up, fast down
  // a->b: min(20 up, 20 down) = 20 Mbps -> 0.5s for 1.25MB.
  EXPECT_NEAR(to_seconds(timed_transfer(a, b, 1'250'000)), 0.5, 1e-9);
  // b->a: min(5, 5) = 5 Mbps -> 2s (starting from current now).
  const TimeNs start = sim.now();
  const TimeNs done = timed_transfer(b, a, 1'250'000);
  EXPECT_NEAR(to_seconds(done - start), 2.0, 1e-9);
}

}  // namespace
}  // namespace dfl::sim
