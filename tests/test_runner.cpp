// Deployment-level tests: the multi-round run() API, ML integration with
// accuracy tracking, deterministic replays, and directory garbage
// collection between rounds.
#include <gtest/gtest.h>

#include <memory>

#include "core/runner.hpp"
#include "ml/federated.hpp"

namespace dfl::core {
namespace {

DeploymentConfig tiny() {
  DeploymentConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_partitions = 2;
  cfg.partition_elements = 16;
  cfg.num_ipfs_nodes = 2;
  cfg.train_time = sim::from_millis(100);
  cfg.schedule = Schedule{sim::from_seconds(20), sim::from_seconds(40), sim::from_millis(50)};
  return cfg;
}

TEST(Runner, MultiRoundRunCollectsMetrics) {
  Deployment d(tiny());
  const RunSummary s = d.run(4);
  ASSERT_EQ(s.rounds.size(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(s.rounds[r].iter, r);
    EXPECT_GE(s.rounds[r].round_done, s.rounds[r].round_start);
  }
  // Rounds proceed on a single simulated timeline.
  EXPECT_GT(s.rounds[3].round_start, s.rounds[0].round_start);
}

TEST(Runner, DeterministicAcrossIdenticalDeployments) {
  auto cfg = tiny();
  cfg.seed = 1234;
  Deployment a(cfg);
  Deployment b(cfg);
  const RoundMetrics ma = a.run_round(0);
  const RoundMetrics mb = b.run_round(0);
  EXPECT_EQ(ma.round_done, mb.round_done);
  EXPECT_EQ(ma.first_gradient_announce, mb.first_gradient_announce);
  ASSERT_EQ(a.last_global_update().size(), b.last_global_update().size());
  for (std::size_t i = 0; i < a.last_global_update().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.last_global_update()[i], b.last_global_update()[i]);
  }
}

TEST(Runner, MlRunTracksAccuracyAndImproves) {
  Rng rng(5);
  const ml::Dataset data = ml::make_gaussian_blobs(rng, 600, 4, 2, 4.0);
  const ml::Dataset eval = ml::make_gaussian_blobs(rng, 300, 4, 2, 4.0);
  const auto shards = ml::split_iid(data, 4, rng);
  Rng model_rng(3);
  auto model = std::make_unique<ml::LogisticRegression>(4, 2, model_rng);
  const std::size_t params = model->num_params();
  auto source = std::make_unique<MlGradientSource>(std::move(model), shards, 0.5,
                                                   sim::from_millis(100));

  auto cfg = tiny();
  cfg.num_partitions = 2;
  cfg.partition_elements = params / 2;
  Deployment d(cfg, std::move(source));
  const RunSummary s = d.run(10, &eval);
  ASSERT_EQ(s.accuracy.size(), 10u);
  ASSERT_EQ(s.loss.size(), 10u);
  EXPECT_GT(s.accuracy.back(), 0.9);
  EXPECT_LT(s.loss.back(), s.loss.front());
  EXPECT_DOUBLE_EQ(s.rounds.back().post_round_accuracy, s.accuracy.back());
}

TEST(Runner, DirectoryGcBoundsState) {
  Deployment d(tiny());
  (void)d.run(3);
  // run() garbage-collects everything before the latest round.
  EXPECT_TRUE(d.directory().rows(0, 0, directory::EntryType::kGradient).empty());
  EXPECT_FALSE(d.directory().rows(0, 2, directory::EntryType::kGradient).empty());
}

TEST(Runner, AccessorsExposeTopology) {
  auto cfg = tiny();
  cfg.aggs_per_partition = 2;
  Deployment d(cfg);
  EXPECT_EQ(d.num_aggregators(), 4u);  // 2 partitions x 2 slots
  EXPECT_EQ(d.swarm().node_count(), 2u);
  EXPECT_EQ(d.trainer(0).id(), 0u);
  EXPECT_EQ(d.aggregator(3).partition(), 1u);
  EXPECT_EQ(d.config().num_trainers, 4u);
}

TEST(Runner, SyntheticSourceRecordsLastUpdate) {
  Deployment d(tiny());
  (void)d.run_round(0);
  auto* src = dynamic_cast<SyntheticGradientSource*>(&d.source());
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->last_update().size(), d.last_global_update().size());
}

TEST(Runner, ShardedRoundsAreBitIdenticalToSerial) {
  auto cfg = tiny();
  cfg.seed = 99;
  Deployment serial(cfg);
  cfg.shards = 2;
  Deployment sharded(cfg);
  EXPECT_EQ(sharded.shards(), 2u);
  EXPECT_GE(sharded.lookahead(), 1);
  for (std::uint32_t r = 0; r < 2; ++r) {
    const RoundMetrics ma = serial.run_round(r);
    const RoundMetrics mb = sharded.run_round(r);
    EXPECT_EQ(ma.round_done, mb.round_done);
    EXPECT_EQ(ma.first_gradient_announce, mb.first_gradient_announce);
    EXPECT_EQ(ma.datapath.sim_events, mb.datapath.sim_events);
    // The windowed driver fills the sharding record; serial leaves it zero.
    EXPECT_EQ(ma.sharding.windows, 0u);
    EXPECT_GT(mb.sharding.windows, 0u);
    EXPECT_EQ(mb.sharding.shards, 2u);
    EXPECT_GT(mb.sharding.cross_shard_transfers + mb.sharding.local_shard_transfers, 0u);
    ASSERT_EQ(serial.last_global_update().size(), sharded.last_global_update().size());
    for (std::size_t i = 0; i < serial.last_global_update().size(); ++i) {
      EXPECT_DOUBLE_EQ(serial.last_global_update()[i], sharded.last_global_update()[i]);
    }
  }
}

TEST(Runner, ShardCountClampsToHostsAndRejectsBadEnv) {
  auto cfg = tiny();  // 2 nodes + 1 directory + 4 trainers + 2 aggs = 9 hosts
  cfg.shards = 64;    // more shards than hosts: placement clamps
  Deployment d(cfg);
  EXPECT_LE(d.shards(), 9u);
  EXPECT_EQ(d.shard_placement().hosts(), 9u);
}

}  // namespace
}  // namespace dfl::core
