// Data-plane A/B guarantees: the zero-copy plane must change only *host*
// work (copies, hashes), never *simulated* results. A fixed-seed fig1-style
// deployment is run in kZeroCopy and kDeepCopy mode and every simulated
// quantity — event times, delays, wire bytes — must be bit-identical, while
// the host-side DataPathStats show the sharing and caching actually kicked in.
#include <gtest/gtest.h>

#include <vector>

#include "core/runner.hpp"
#include "sim/datapath.hpp"

namespace dfl::core {
namespace {

DeploymentConfig small_fig1_config() {
  DeploymentConfig cfg;
  cfg.num_trainers = 8;
  cfg.num_partitions = 2;
  cfg.partition_elements = 2048;
  cfg.aggs_per_partition = 2;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 2;
  cfg.train_time = sim::from_seconds(1);
  cfg.options.gradient_replicas = 2;  // exercises shared-buffer multi-target puts
  cfg.seed = 42;
  return cfg;
}

/// The simulated quantities a round produces, flattened for comparison.
struct SimFingerprint {
  std::vector<sim::TimeNs> times;
  std::vector<std::uint64_t> bytes;

  friend bool operator==(const SimFingerprint&, const SimFingerprint&) = default;
};

SimFingerprint fingerprint(const RoundMetrics& m, std::uint64_t wire_bytes) {
  SimFingerprint fp;
  fp.times.push_back(m.round_start);
  fp.times.push_back(m.first_gradient_announce);
  fp.times.push_back(m.round_done);
  for (const TrainerRecord& t : m.trainers) {
    fp.times.push_back(t.model_ready_at);
    fp.bytes.push_back(static_cast<std::uint64_t>(t.uploads));
    fp.bytes.push_back(t.rpc.attempts);
  }
  for (const AggregatorRecord& a : m.aggregators) {
    fp.times.push_back(a.gather_done_at);
    fp.times.push_back(a.sync_done_at);
    fp.times.push_back(a.global_written_at);
    fp.bytes.push_back(a.bytes_received);
    fp.bytes.push_back(a.gradients_aggregated);
  }
  fp.bytes.push_back(wire_bytes);
  return fp;
}

struct ModeRun {
  SimFingerprint fp;
  sim::DataPathStats stats;
  std::uint64_t sim_events = 0;
};

ModeRun run_in_mode(sim::DataPathMode mode, int rounds) {
  sim::set_datapath_mode(mode);
  sim::reset_datapath_stats();
  ModeRun out;
  Deployment d(small_fig1_config());
  for (int r = 0; r < rounds; ++r) {
    const RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    const SimFingerprint fp = fingerprint(m, d.context().net.total_bytes_transferred());
    out.fp.times.insert(out.fp.times.end(), fp.times.begin(), fp.times.end());
    out.fp.bytes.insert(out.fp.bytes.end(), fp.bytes.begin(), fp.bytes.end());
    out.sim_events += m.datapath.sim_events;
  }
  out.stats = sim::datapath_stats();
  sim::set_datapath_mode(sim::DataPathMode::kZeroCopy);
  return out;
}

TEST(DataPathGolden, ZeroCopyAndDeepCopyAreSimIdentical) {
  const ModeRun deep = run_in_mode(sim::DataPathMode::kDeepCopy, 2);
  const ModeRun zero = run_in_mode(sim::DataPathMode::kZeroCopy, 2);

  // Byte-identical simulated results: every timestamp and every wire/bytes
  // counter matches between the legacy plane and the zero-copy plane.
  EXPECT_EQ(deep.fp, zero.fp);
  // Same protocol => same event sequence => same event count.
  EXPECT_EQ(deep.sim_events, zero.sim_events);

  // And the host-side behaviour genuinely differs: the legacy plane copied
  // what the zero-copy plane shares.
  EXPECT_GT(deep.stats.bytes_copied, 0u);
  EXPECT_GT(zero.stats.bytes_shared, 0u);
  EXPECT_LT(zero.stats.bytes_copied, deep.stats.bytes_copied);
  EXPECT_GT(zero.stats.cid_cache_hits, 0u);
  EXPECT_GT(zero.stats.copy_reduction_factor(), deep.stats.copy_reduction_factor());
}

TEST(DataPathGolden, FixedSeedRunsAreBitIdentical) {
  // Same mode, same seed, twice: the refactored simulator core (inline
  // events + binary heap) must keep determinism exact.
  const ModeRun a = run_in_mode(sim::DataPathMode::kZeroCopy, 2);
  const ModeRun b = run_in_mode(sim::DataPathMode::kZeroCopy, 2);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(DataPathGolden, RoundMetricsSurfaceDataPathStats) {
  sim::set_datapath_mode(sim::DataPathMode::kZeroCopy);
  sim::reset_datapath_stats();
  Deployment d(small_fig1_config());
  const RoundMetrics m = d.run_round(0);
  // The per-round delta shows a live data plane...
  EXPECT_GT(m.datapath.stats.blocks_created, 0u);
  EXPECT_GT(m.datapath.stats.bytes_shared, 0u);
  EXPECT_GT(m.datapath.sim_events, 0u);
  EXPECT_GT(m.datapath.wall_ns, 0u);
  EXPECT_GT(m.datapath.events_per_sec(), 0.0);
  // ...and hash work far below one-hash-per-hop: every replica put, store
  // read and verification after the first is a cache hit.
  EXPECT_GT(m.datapath.stats.cid_cache_hits, m.datapath.stats.blocks_hashed);
}

}  // namespace
}  // namespace dfl::core
