// Scenario engine: the declarative chaos format (parse errors carry line
// numbers), the fault-plan generators it expands into (deterministic in
// seed, coalesced per host), FaultPlan validation, periodic-churn edge
// cases, provider-record expiry/republish, and an end-to-end scenario run
// that must be bit-identical under the same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/runner.hpp"
#include "ipfs/swarm.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

namespace dfl::sim {
namespace {

// --- distribution parsing -------------------------------------------------

TEST(ParseDistribution, BareNumberIsConstant) {
  const Distribution d = parse_distribution("  7.5 ");
  EXPECT_TRUE(d.is_constant());
  EXPECT_DOUBLE_EQ(d.a, 7.5);
}

TEST(ParseDistribution, NamedKinds) {
  EXPECT_EQ(parse_distribution("constant(3)").kind, Distribution::Kind::kConstant);
  EXPECT_EQ(parse_distribution("uniform(1, 2)").kind, Distribution::Kind::kUniform);
  EXPECT_EQ(parse_distribution("normal(10, 2)").kind, Distribution::Kind::kNormal);
  EXPECT_EQ(parse_distribution("lognormal(10, 0.5)").kind, Distribution::Kind::kLogNormal);
  EXPECT_EQ(parse_distribution("exp(20)").kind, Distribution::Kind::kExponential);
  EXPECT_EQ(parse_distribution("exponential(20)").kind, Distribution::Kind::kExponential);
  const Distribution p = parse_distribution("pareto(5, 2.5)");
  EXPECT_EQ(p.kind, Distribution::Kind::kPareto);
  EXPECT_DOUBLE_EQ(p.a, 5.0);
  EXPECT_DOUBLE_EQ(p.b, 2.5);
}

TEST(ParseDistribution, Rejections) {
  EXPECT_THROW((void)parse_distribution("weibull(1,2)"), ScenarioError);
  EXPECT_THROW((void)parse_distribution("uniform(1)"), ScenarioError);
  EXPECT_THROW((void)parse_distribution("normal(1, 2, 3)"), ScenarioError);
  EXPECT_THROW((void)parse_distribution("uniform(1, x)"), ScenarioError);
  EXPECT_THROW((void)parse_distribution("uniform(1, 2"), ScenarioError);
  EXPECT_THROW((void)parse_distribution("not-a-number"), ScenarioError);
  EXPECT_THROW((void)parse_distribution(""), ScenarioError);
}

TEST(ParseDistribution, SamplingIsSeedDeterministic) {
  const Distribution d = parse_distribution("lognormal(10, 0.5)");
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(d.sample(a), d.sample(b));
}

// --- scenario parsing -----------------------------------------------------

constexpr const char* kFullScenario = R"(# full-feature scenario
[scenario]
name = everything
description = all sections exercised
seed = 9
rounds = 3

[deployment]
trainers = 4
nodes = 2

[links.trainers]
bandwidth_mbps = lognormal(10, 0.5)
latency_ms = pareto(3, 2.5)

[links.nodes]
up_mbps = 5          ; asymmetric
down_mbps = uniform(15, 25)

[faults]
transfer_failure_prob = 0.01
corruption_prob = 0.002
latency_jitter_ms = exp(20)
latency_jitter_prob = 0.25

[churn]
roles = trainers
period_s = 60
downtime_s = 10
prob = 0.2

[diurnal]
roles = trainers
period_s = 240
trough_offset_s = 30
trough_len_s = 60
down_prob = 0.5
phase_jitter_s = 10

[sessions]
roles = nodes
on_s = exp(120)
off_s = exp(30)
start_online_prob = 0.8

[degrade]
window = nodes 10 20 0.5 down
window = host:1 0 30 0.25 up

[outage]
window = host:0 5 15

[providers]
ttl_s = 90
republish_s = 30

[slo]
completion_rate_min = 0.9
)";

TEST(ParseScenario, FullFileRoundTrips) {
  const ScenarioSpec spec = parse_scenario(kFullScenario);
  EXPECT_EQ(spec.name, "everything");
  EXPECT_EQ(spec.description, "all sections exercised");
  EXPECT_TRUE(spec.has_seed);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.rounds, 3);
  ASSERT_EQ(spec.deployment.size(), 2u);
  EXPECT_EQ(spec.deployment[0].first, "trainers");
  EXPECT_EQ(spec.deployment[0].second, "4");
  ASSERT_EQ(spec.links.count("trainers"), 1u);
  EXPECT_TRUE(spec.links.at("trainers").has_bandwidth);
  EXPECT_TRUE(spec.links.at("trainers").has_latency);
  EXPECT_TRUE(spec.links.at("nodes").has_up);
  EXPECT_TRUE(spec.links.at("nodes").has_down);
  EXPECT_FALSE(spec.links.at("nodes").has_bandwidth);
  EXPECT_DOUBLE_EQ(spec.transfer_failure_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec.corruption_prob, 0.002);
  EXPECT_DOUBLE_EQ(spec.latency_jitter_prob, 0.25);
  ASSERT_EQ(spec.churn.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.churn[0].period_s, 60);
  ASSERT_EQ(spec.diurnal.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.diurnal[0].phase_jitter_s, 10);
  ASSERT_EQ(spec.sessions.size(), 1u);
  ASSERT_EQ(spec.degrade.size(), 2u);
  EXPECT_EQ(spec.degrade[0].dir, LinkDirection::kDownlink);
  EXPECT_EQ(spec.degrade[1].target, "host:1");
  EXPECT_EQ(spec.degrade[1].dir, LinkDirection::kUplink);
  ASSERT_EQ(spec.outages.size(), 1u);
  EXPECT_EQ(spec.provider_ttl, from_seconds(90));
  EXPECT_EQ(spec.provider_republish, from_seconds(30));
  ASSERT_EQ(spec.slo.size(), 1u);
  EXPECT_EQ(spec.slo[0].first, "completion_rate_min");
  EXPECT_TRUE(spec.active());
}

std::string error_of(const std::string& text) {
  try {
    (void)parse_scenario(text);
  } catch (const ScenarioError& e) {
    return e.what();
  }
  return {};
}

TEST(ParseScenario, ErrorsCarryLineNumbers) {
  // Line 3 holds the malformed entry in each snippet.
  const std::string bad_key = "[scenario]\nname = x\nbogus = 1\n";
  EXPECT_NE(error_of(bad_key).find("scenario:3"), std::string::npos) << error_of(bad_key);

  const std::string bad_prob = "[scenario]\nname = x\n[faults]\ncorruption_prob = 1.5\n";
  EXPECT_NE(error_of(bad_prob).find("scenario:4"), std::string::npos) << error_of(bad_prob);

  const std::string bad_section = "[scenario]\nname = x\n[wat]\n";
  EXPECT_NE(error_of(bad_section).find("scenario:3"), std::string::npos);
}

TEST(ParseScenario, Rejections) {
  EXPECT_THROW((void)parse_scenario("x = 1\n"), ScenarioError);          // entry before section
  EXPECT_THROW((void)parse_scenario("[scenario\nname = x\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("[scenario]\nno-equals-sign\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("[scenario]\nseed = 1\n"), ScenarioError);  // no name
  EXPECT_THROW((void)parse_scenario("[scenario]\nname = x\n[churn]\nperiod_s = 1\n"),
               ScenarioError);  // churn without roles
  EXPECT_THROW((void)parse_scenario("[scenario]\nname = x\n[degrade]\nwindow = nodes 1 2\n"),
               ScenarioError);  // short degrade window
  EXPECT_THROW(
      (void)parse_scenario("[scenario]\nname = x\n[degrade]\nwindow = nodes 1 2 0.5 sideways\n"),
      ScenarioError);  // bad direction
}

TEST(ParseScenario, CommentsAndWhitespaceIgnored) {
  const ScenarioSpec spec = parse_scenario(
      "; leading comment\n"
      "  [scenario]  # trailing\n"
      "  name = padded   ; inline\n"
      "\n");
  EXPECT_EQ(spec.name, "padded");
}

// --- fault-plan generation ------------------------------------------------

RoleMap two_roles() {
  return RoleMap{{"nodes", {0, 1}}, {"trainers", {2, 3, 4}}};
}

TEST(BuildFaultPlan, DeterministicInSeed) {
  const ScenarioSpec spec = parse_scenario(kFullScenario);
  const RoleMap roles = two_roles();
  const FaultPlan a = spec.build_fault_plan(roles, from_seconds(600), 7);
  const FaultPlan b = spec.build_fault_plan(roles, from_seconds(600), 7);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].host_id, b.crashes[i].host_id);
    EXPECT_EQ(a.crashes[i].down_at, b.crashes[i].down_at);
    EXPECT_EQ(a.crashes[i].up_at, b.crashes[i].up_at);
  }
  const FaultPlan c = spec.build_fault_plan(roles, from_seconds(600), 8);
  bool same = a.crashes.size() == c.crashes.size();
  if (same) {
    for (std::size_t i = 0; i < a.crashes.size(); ++i) {
      same = same && a.crashes[i].down_at == c.crashes[i].down_at;
    }
  }
  EXPECT_FALSE(same) << "different seeds produced an identical schedule";
}

TEST(BuildFaultPlan, ResolvesRolesAndHosts) {
  const ScenarioSpec spec = parse_scenario(
      "[scenario]\nname = x\n"
      "[outage]\nwindow = trainers 10 20\nwindow = host:7 1 2\n"
      "[degrade]\nwindow = nodes 5 6 0.5 up\n");
  const FaultPlan plan = spec.build_fault_plan(two_roles(), from_seconds(60), 1);
  // trainers = hosts 2,3,4 plus explicit host 7, sorted by (down_at, host).
  ASSERT_EQ(plan.crashes.size(), 4u);
  EXPECT_EQ(plan.crashes[0].host_id, 7u);
  EXPECT_EQ(plan.crashes[1].host_id, 2u);
  ASSERT_EQ(plan.degradations.size(), 2u);
  EXPECT_EQ(plan.degradations[0].host_id, 0u);
  EXPECT_EQ(plan.degradations[0].dir, LinkDirection::kUplink);
}

TEST(BuildFaultPlan, UnknownRoleThrows) {
  const ScenarioSpec spec = parse_scenario(
      "[scenario]\nname = x\n[outage]\nwindow = ghosts 1 2\n");
  EXPECT_THROW((void)spec.build_fault_plan(two_roles(), from_seconds(60), 1), ScenarioError);
}

TEST(BuildFaultPlan, OverlappingWindowsCoalesce) {
  const ScenarioSpec spec = parse_scenario(
      "[scenario]\nname = x\n"
      "[outage]\nwindow = host:0 10 30\nwindow = host:0 20 40\nwindow = host:0 50 60\n");
  const FaultPlan plan = spec.build_fault_plan(two_roles(), from_seconds(100), 1);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].down_at, from_seconds(10));
  EXPECT_EQ(plan.crashes[0].up_at, from_seconds(40));
  EXPECT_EQ(plan.crashes[1].down_at, from_seconds(50));
}

TEST(BuildFaultPlan, ForeverWindowSwallowsLaterOnes) {
  const ScenarioSpec spec = parse_scenario(
      "[scenario]\nname = x\n"
      "[outage]\nwindow = host:0 10 10\nwindow = host:0 20 30\n");  // up <= down = forever
  const FaultPlan plan = spec.build_fault_plan(two_roles(), from_seconds(100), 1);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_LE(plan.crashes[0].up_at, plan.crashes[0].down_at);
}

TEST(BuildFaultPlan, SessionTraceCoversHorizon) {
  const ScenarioSpec spec = parse_scenario(
      "[scenario]\nname = x\n"
      "[sessions]\nroles = trainers\non_s = 5\noff_s = 5\nstart_online_prob = 1\n");
  const TimeNs horizon = from_seconds(60);
  const FaultPlan plan = spec.build_fault_plan(two_roles(), horizon, 3);
  EXPECT_FALSE(plan.crashes.empty());
  for (const CrashWindow& w : plan.crashes) {
    EXPECT_GE(w.down_at, 0);
    EXPECT_LT(w.down_at, horizon);
    EXPECT_GT(w.up_at, w.down_at);
  }
  // Deterministic 5s-on/5s-off alternation: every trainer gets ~6 windows.
  EXPECT_EQ(plan.crashes.size(), 18u);
}

// --- FaultPlan::validate (satellite: arm-time validation) -----------------

TEST(FaultPlanValidate, RejectsBadValues) {
  FaultPlan plan;
  plan.transfer_failure_prob = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.corruption_prob = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.degradations.push_back(DegradeWindow{0, from_seconds(1), from_seconds(2), 0.0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // factor outside (0,1]

  plan = FaultPlan{};
  plan.degradations.push_back(DegradeWindow{0, from_seconds(1), from_seconds(2), 1.5});
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.degradations.push_back(DegradeWindow{0, from_seconds(5), from_seconds(2), 0.5});
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // ends before it starts

  plan = FaultPlan{};
  plan.crashes.push_back(CrashWindow{0, -from_seconds(1), from_seconds(1)});
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // negative down_at
}

TEST(FaultPlanValidate, AcceptsWellFormedPlan) {
  FaultPlan plan;
  plan.transfer_failure_prob = 0.5;
  plan.latency_jitter_prob = 1.0;
  plan.crashes.push_back(CrashWindow{1, from_seconds(1), from_seconds(2)});
  plan.degradations.push_back(DegradeWindow{0, 0, from_seconds(2), 1.0});
  EXPECT_NO_THROW(plan.validate());
}

// --- periodic_churn edge cases (satellite) --------------------------------

TEST(PeriodicChurn, ZeroProbabilityYieldsNoCrashes) {
  const FaultPlan plan = FaultPlan::periodic_churn({0, 1, 2}, from_seconds(100),
                                                   from_seconds(10), from_seconds(2), 0.0, 1);
  EXPECT_TRUE(plan.crashes.empty());
}

TEST(PeriodicChurn, CertainChurnCrashesEveryHostEverySlot) {
  // Period does not divide the horizon: 100 / 30 -> slots at 0, 30, 60, 90.
  const FaultPlan plan = FaultPlan::periodic_churn({4, 9}, from_seconds(100),
                                                   from_seconds(30), from_seconds(5), 1.0, 1);
  EXPECT_EQ(plan.crashes.size(), 2u * 4u);
  for (const CrashWindow& w : plan.crashes) {
    EXPECT_EQ(w.up_at - w.down_at, from_seconds(5));
    EXPECT_LT(w.down_at, from_seconds(100));
    // Crashes land in the first half of their slot, so a fixed downtime
    // shorter than half a period can never bridge two slots.
    const TimeNs offset = w.down_at % from_seconds(30);
    EXPECT_LT(offset, from_seconds(15));
  }
}

TEST(PeriodicChurn, SameSeedBitIdentical) {
  const auto make = [](std::uint64_t seed) {
    return FaultPlan::periodic_churn({0, 1, 2, 3}, from_seconds(300), from_seconds(7),
                                     from_seconds(3), 0.5, seed);
  };
  const FaultPlan a = make(123);
  const FaultPlan b = make(123);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].host_id, b.crashes[i].host_id);
    EXPECT_EQ(a.crashes[i].down_at, b.crashes[i].down_at);
    EXPECT_EQ(a.crashes[i].up_at, b.crashes[i].up_at);
  }
  EXPECT_FALSE(make(124).crashes.size() == a.crashes.size() &&
               (a.crashes.empty() || make(124).crashes[0].down_at == a.crashes[0].down_at));
}

TEST(PeriodicChurn, DowntimeLongerThanPeriodStillValidates) {
  const FaultPlan plan = FaultPlan::periodic_churn({0}, from_seconds(50), from_seconds(5),
                                                   from_seconds(20), 1.0, 2);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.crashes.size(), 10u);
}

TEST(PeriodicChurn, ArmAfterGeneratingNeverThrows) {
  // The generated schedule must always pass the injector's arm-time
  // validation — the contract between generator and consumer.
  Simulator sim;
  Network net(sim);
  for (int i = 0; i < 3; ++i) net.add_host("h" + std::to_string(i), HostConfig{1e6, 1e6, 0});
  FaultInjector inj(net, FaultPlan::periodic_churn({0, 1, 2}, from_seconds(60), from_seconds(4),
                                                   from_seconds(1), 0.7, 99));
  EXPECT_NO_THROW(inj.arm());
}

// --- provider-record expiry / republish -----------------------------------

struct ProviderExpiryFixture : ::testing::Test {
  Simulator sim;
  Network net{sim};
  Host& client = net.add_host("client", HostConfig{10e6, 10e6, 0});

  template <typename T>
  T run(Task<T> task, bool* threw = nullptr) {
    std::optional<T> out;
    sim.spawn([](Task<T> t, std::optional<T>& o, bool* flag) -> Task<void> {
      try {
        o = co_await std::move(t);
      } catch (const std::exception&) {
        if (flag != nullptr) *flag = true;
      }
    }(std::move(task), out, threw));
    sim.run();
    if (!out.has_value()) {
      if (threw != nullptr && *threw) return T{};
      throw std::runtime_error("task did not complete");
    }
    return *out;
  }
};

TEST_F(ProviderExpiryFixture, RecordsExpireAndLookupsFailRetryably) {
  ipfs::SwarmConfig cfg;
  cfg.provider_ttl = from_seconds(10);
  ipfs::Swarm swarm(net, cfg);
  swarm.add_node("n0", HostConfig{10e6, 10e6, 0});
  const ipfs::Cid cid = run(swarm.node(0).put(client, dfl::bytes_of("payload")));
  EXPECT_EQ(swarm.providers(cid).size(), 1u);

  sim.schedule_at(from_seconds(11), [] {});
  sim.run();
  EXPECT_TRUE(swarm.providers(cid).empty());
  EXPECT_EQ(swarm.providers(cid, /*include_expired=*/true).size(), 1u);

  bool threw = false;
  (void)run(swarm.fetch(client, cid), &threw);
  EXPECT_TRUE(threw) << "fetch served from an expired record";
  EXPECT_GE(swarm.provider_stats().expired_lookups, 1u);
}

TEST_F(ProviderExpiryFixture, ReannounceRefreshesExpiry) {
  ipfs::SwarmConfig cfg;
  cfg.provider_ttl = from_seconds(10);
  ipfs::Swarm swarm(net, cfg);
  swarm.add_node("n0", HostConfig{10e6, 10e6, 0});
  const ipfs::Cid cid = run(swarm.node(0).put(client, dfl::bytes_of("fresh")));

  sim.schedule_at(from_seconds(8), [&] { swarm.add_provider(cid, 0); });
  sim.schedule_at(from_seconds(15), [] {});
  sim.run();
  // Refreshed at t=8 -> expires at 18, still valid at 15.
  EXPECT_EQ(swarm.providers(cid).size(), 1u);
}

TEST_F(ProviderExpiryFixture, RepublishRevivesLiveHolders) {
  ipfs::SwarmConfig cfg;
  cfg.provider_ttl = from_seconds(10);
  cfg.provider_republish = from_seconds(4);
  ipfs::Swarm swarm(net, cfg);
  swarm.add_node("n0", HostConfig{10e6, 10e6, 0});
  const ipfs::Cid cid = run(swarm.node(0).put(client, dfl::bytes_of("kept alive")));

  swarm.republish_until(from_seconds(30));
  sim.schedule_at(from_seconds(29), [] {});
  sim.run();
  // Well past the 10s TTL, but sweeps every 4s kept the record fresh.
  EXPECT_EQ(swarm.providers(cid).size(), 1u);
  EXPECT_GE(swarm.provider_stats().republish_sweeps, 6u);
  EXPECT_GE(swarm.provider_stats().records_refreshed, 6u);
  EXPECT_EQ(run(swarm.fetch(client, cid)), dfl::bytes_of("kept alive"));
}

TEST_F(ProviderExpiryFixture, RepublishCursorIsMonotonic) {
  ipfs::SwarmConfig cfg;
  cfg.provider_ttl = from_seconds(10);
  cfg.provider_republish = from_seconds(5);
  ipfs::Swarm swarm(net, cfg);
  swarm.add_node("n0", HostConfig{10e6, 10e6, 0});
  // Overlapping horizons must not double-schedule sweeps.
  swarm.republish_until(from_seconds(20));
  swarm.republish_until(from_seconds(20));
  swarm.republish_until(from_seconds(12));
  sim.schedule_at(from_seconds(19), [] {});
  sim.run();
  EXPECT_EQ(swarm.provider_stats().republish_sweeps, 3u);  // t = 5, 10, 15
}

}  // namespace
}  // namespace dfl::sim

// --- end-to-end: scenario through a deployment ----------------------------

namespace dfl::core {
namespace {

constexpr const char* kMiniScenario = R"(
[scenario]
name = mini
seed = 5
rounds = 2

[deployment]
trainers = 4
partitions = 2
elements = 64
nodes = 4
providers = 2
t_train_s = 60
t_sync_s = 120
poll_ms = 50
train_time_s = 0.2

[links.trainers]
bandwidth_mbps = lognormal(10, 0.4)
latency_ms = uniform(1, 8)

[faults]
latency_jitter_ms = 5
latency_jitter_prob = 1

[churn]
roles = nodes
period_s = 2
downtime_s = 1
prob = 0.3

[providers]
ttl_s = 30
republish_s = 10
)";

struct RunResult {
  std::vector<double> aggregate;
  sim::FaultStats faults;
  std::size_t complete = 0;
};

RunResult run_scenario_text(const std::string& text, std::uint64_t seed_override = 0) {
  DeploymentConfig cfg;
  const int rounds = apply_scenario(sim::parse_scenario(text), cfg);
  if (seed_override != 0) cfg.seed = seed_override;
  Deployment d(cfg);
  RunResult out;
  for (int r = 0; r < rounds; ++r) {
    const RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    out.faults.crashes += m.faults.crashes;
    out.faults.restarts += m.faults.restarts;
    out.faults.transfers_jittered += m.faults.transfers_jittered;
    out.complete += m.partitions_complete;
    if (!d.last_global_update().empty()) out.aggregate = d.last_global_update();
  }
  return out;
}

TEST(ScenarioDeployment, AppliesDeploymentOverrides) {
  DeploymentConfig cfg;
  const int rounds = apply_scenario(sim::parse_scenario(kMiniScenario), cfg);
  EXPECT_EQ(rounds, 2);
  EXPECT_EQ(cfg.num_trainers, 4u);
  EXPECT_EQ(cfg.num_partitions, 2u);
  EXPECT_EQ(cfg.partition_elements, 64u);
  EXPECT_EQ(cfg.providers_per_agg, 2u);
  EXPECT_EQ(cfg.seed, 5u);
  EXPECT_EQ(cfg.schedule.t_sync, sim::from_seconds(120));
  EXPECT_TRUE(cfg.scenario.active());
}

TEST(ScenarioDeployment, UnknownDeploymentKeyThrows) {
  DeploymentConfig cfg;
  EXPECT_THROW((void)apply_scenario(sim::parse_scenario(
                   "[scenario]\nname = x\n[deployment]\nwarp_drive = 1\n"),
               cfg),
               sim::ScenarioError);
}

TEST(ScenarioDeployment, RolesMirrorCreationOrder) {
  DeploymentConfig cfg;
  cfg.num_ipfs_nodes = 3;
  cfg.directory_replicas = 2;
  cfg.num_trainers = 4;
  cfg.num_partitions = 2;
  cfg.aggs_per_partition = 1;
  const sim::RoleMap roles = deployment_roles(cfg);
  EXPECT_EQ(roles.at("nodes"), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(roles.at("directory"), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(roles.at("trainers"), (std::vector<std::uint32_t>{5, 6, 7, 8}));
  EXPECT_EQ(roles.at("aggregators"), (std::vector<std::uint32_t>{9, 10}));
}

TEST(ScenarioDeployment, SameSeedBitIdentical) {
  const RunResult a = run_scenario_text(kMiniScenario);
  const RunResult b = run_scenario_text(kMiniScenario);
  EXPECT_EQ(a.aggregate, b.aggregate);  // bitwise: vectors of doubles
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_FALSE(a.aggregate.empty());
}

TEST(ScenarioDeployment, SeedOverrideReshapesChaos) {
  const RunResult a = run_scenario_text(kMiniScenario);
  const RunResult b = run_scenario_text(kMiniScenario, /*seed_override=*/77);
  EXPECT_FALSE(a.faults == b.faults) << "seed override did not reshape the fault schedule";
}

TEST(ScenarioDeployment, JitterTouchesTransfers) {
  const RunResult a = run_scenario_text(kMiniScenario);
  EXPECT_GT(a.faults.transfers_jittered, 0u);
}

TEST(ScenarioDeployment, InstantEventsRecordedWhenTracing) {
  obs::set_tracing(true);
  obs::Tracer::instance().clear();
  const RunResult a = run_scenario_text(kMiniScenario);
  ASSERT_GT(a.faults.crashes, 0u) << "scenario injected no chaos to trace";
  const obs::Tracer::Snapshot snap = obs::Tracer::instance().snapshot();
  std::size_t instants = 0;
  bool saw_crash = false;
  for (const obs::Span& s : snap.spans) {
    if (!s.instant) continue;
    ++instants;
    EXPECT_EQ(s.start_ns, s.end_ns);
    if (std::string(s.name) == "crash") saw_crash = true;
  }
  obs::set_tracing(false);
  obs::Tracer::instance().clear();
  EXPECT_GT(instants, 0u);
  EXPECT_TRUE(saw_crash);
}

}  // namespace
}  // namespace dfl::core
