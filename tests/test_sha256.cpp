#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace dfl::crypto {
namespace {

std::string hex_of(const Sha256Digest& d) {
  return dfl::to_hex(BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(Sha256::hash(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::hash(dfl::bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha256::hash(dfl::bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(hex_of(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = dfl::bytes_of("the quick brown fox jumps over the lazy dog");
  const auto oneshot = Sha256::hash(msg);
  // Split at every possible boundary.
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(BytesView(msg.data(), split));
    ctx.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finalize(), oneshot) << "split at " << split;
  }
}

TEST(Sha256, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundaries are the
  // classic off-by-one territory; verify self-consistency and distinctness.
  Sha256Digest prev{};
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 127u, 128u, 129u}) {
    const Bytes msg(len, 0x5a);
    const auto d1 = Sha256::hash(msg);
    Sha256 ctx;
    for (std::size_t i = 0; i < len; ++i) ctx.update(&msg[i], 1);
    EXPECT_EQ(ctx.finalize(), d1) << "len " << len;
    EXPECT_NE(d1, prev);
    prev = d1;
  }
}

TEST(Sha256, DifferentInputsDiffer) {
  EXPECT_NE(Sha256::hash(dfl::bytes_of("abc")), Sha256::hash(dfl::bytes_of("abd")));
  EXPECT_NE(Sha256::hash(dfl::bytes_of("")), Sha256::hash(Bytes{0x00}));
}

TEST(Sha256, VectorConvenienceMatches) {
  const Bytes msg = dfl::bytes_of("abc");
  const Bytes digest = sha256(msg);
  ASSERT_EQ(digest.size(), 32u);
  EXPECT_EQ(dfl::to_hex(digest),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace dfl::crypto
