#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace dfl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.uniform(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // expect ~1000 each
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == child.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, FillBytesCoversAllPositions) {
  Rng rng(29);
  std::vector<std::uint8_t> buf(1031, 0);
  rng.fill_bytes(buf.data(), buf.size());
  // With random bytes, expect at least some nonzero in every 64-byte chunk.
  for (std::size_t start = 0; start < buf.size(); start += 64) {
    bool nonzero = false;
    for (std::size_t i = start; i < std::min(start + 64, buf.size()); ++i) {
      nonzero |= (buf[i] != 0);
    }
    EXPECT_TRUE(nonzero) << "all-zero chunk at " << start;
  }
}

}  // namespace
}  // namespace dfl
