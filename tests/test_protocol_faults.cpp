// Fault-injection and extension tests for the full protocol: unreliable
// trainers, storage-node failures with gradient replication, hashed
// provider allocation, and batched directory announcements.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "crypto/encoding.hpp"

namespace dfl::core {
namespace {

DeploymentConfig base_config() {
  DeploymentConfig cfg;
  cfg.num_trainers = 6;
  cfg.num_partitions = 2;
  cfg.partition_elements = 32;
  cfg.num_ipfs_nodes = 3;
  // Short deadlines keep straggler tests quick.
  cfg.schedule = Schedule{sim::from_seconds(15), sim::from_seconds(40), sim::from_millis(50)};
  cfg.train_time = sim::from_millis(200);
  return cfg;
}

/// Average over the given participants' gradients.
std::vector<double> average_of(Deployment& d, const std::vector<std::uint32_t>& participants,
                               std::uint32_t iter) {
  const auto& cfg = d.config();
  const std::size_t n = cfg.partition_elements * cfg.num_partitions;
  std::vector<std::int64_t> sum(n, 0);
  for (const std::uint32_t t : participants) {
    const auto g = d.source().gradient(t, iter);
    for (std::size_t i = 0; i < n; ++i) sum[i] += g[i];
  }
  std::vector<double> avg(n);
  for (std::size_t i = 0; i < n; ++i) {
    avg[i] = crypto::decode_fixed(sum[i], cfg.options.frac_bits) /
             static_cast<double>(participants.size());
  }
  return avg;
}

void expect_update_equals(Deployment& d, const std::vector<std::uint32_t>& participants) {
  const auto expected = average_of(d, participants, 0);
  const auto& got = d.last_global_update();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-9) << "element " << i;
  }
}

TEST(ProtocolFaults, OfflineTrainerExcludedFromAverage) {
  auto cfg = base_config();
  cfg.trainer_behaviors[2] = TrainerBehavior::kOffline;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_TRUE(m.trainers[2].offline);
  // The round completes over the 5 participants; weight counts only them.
  expect_update_equals(d, {0, 1, 3, 4, 5});
  for (std::uint32_t t : {0u, 1u, 3u, 4u, 5u}) {
    EXPECT_FALSE(m.trainers[t].update_missing) << t;
  }
}

TEST(ProtocolFaults, SlowTrainerAbortsAndIsExcluded) {
  auto cfg = base_config();
  cfg.trainer_behaviors[0] = TrainerBehavior::kSlow;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_TRUE(m.trainers[0].aborted);  // Algorithm 1 line 10
  EXPECT_EQ(m.trainers[0].uploads, 0);
  expect_update_equals(d, {1, 2, 3, 4, 5});
}

TEST(ProtocolFaults, MultipleUnreliableTrainers) {
  auto cfg = base_config();
  cfg.trainer_behaviors[1] = TrainerBehavior::kOffline;
  cfg.trainer_behaviors[4] = TrainerBehavior::kSlow;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  expect_update_equals(d, {0, 2, 3, 5});
  EXPECT_EQ(m.aggregators[0].gradients_aggregated, 4u);
}

TEST(ProtocolFaults, AllTrainersOfflineFailsGracefully) {
  auto cfg = base_config();
  for (std::uint32_t t = 0; t < cfg.num_trainers; ++t) {
    cfg.trainer_behaviors[t] = TrainerBehavior::kOffline;
  }
  Deployment d(cfg);
  (void)d.run_round(0);
  EXPECT_TRUE(d.last_global_update().empty());
}

TEST(ProtocolFaults, GradientReplicasSurviveNodeFailure) {
  auto cfg = base_config();
  cfg.num_ipfs_nodes = 3;
  cfg.providers_per_agg = 3;
  cfg.options.gradient_replicas = 2;
  Deployment d(cfg);
  // Storage node 0 is dead for the whole round: trainers whose primary
  // provider it is fail over to their replica target.
  d.swarm().node(0).host().set_up(false);
  const RoundMetrics m = d.run_round(0);
  // Every gradient reached a live replica, so the round aggregates all 6.
  for (const auto& a : m.aggregators) {
    EXPECT_EQ(a.gradients_aggregated, 6u);
  }
  EXPECT_FALSE(d.last_global_update().empty());
}

TEST(ProtocolFaults, WithoutReplicasNodeFailureLosesGradients) {
  auto cfg = base_config();
  cfg.num_ipfs_nodes = 3;
  cfg.providers_per_agg = 3;
  cfg.options.gradient_replicas = 1;
  Deployment d(cfg);
  d.swarm().node(0).host().set_up(false);
  const RoundMetrics m = d.run_round(0);
  // Single-copy gradients destined for node 0 are lost; aggregation
  // proceeds with a subset (exactly the failure mode Section VI warns of).
  std::uint64_t total = 0;
  for (const auto& a : m.aggregators) total += a.gradients_aggregated;
  EXPECT_LT(total, 12u);  // 6 trainers x 2 partitions when healthy
}

TEST(ProtocolFaults, MergeFallbackWhenProviderDies) {
  auto cfg = base_config();
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 4;
  cfg.options.merge_and_download = true;
  cfg.options.gradient_replicas = 2;
  Deployment d(cfg);
  d.swarm().node(1).host().set_up(false);
  const RoundMetrics m = d.run_round(0);
  for (const auto& a : m.aggregators) {
    EXPECT_EQ(a.gradients_aggregated, 6u);
  }
  EXPECT_FALSE(d.last_global_update().empty());
}

TEST(ProtocolFaults, HashedProviderPolicyRoundCompletes) {
  auto cfg = base_config();
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 4;
  cfg.options.provider_policy = ProviderPolicy::kHashed;
  cfg.options.merge_and_download = true;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  for (const auto& t : m.trainers) EXPECT_FALSE(t.update_missing);
  expect_update_equals(d, {0, 1, 2, 3, 4, 5});
}

TEST(ProtocolFaults, HashedPolicySpreadsLoad) {
  TaskSpec spec(1024, 4, 64);
  spec.build_round_robin(1, 8, 8);
  spec.options.provider_policy = ProviderPolicy::kHashed;
  // Count assignments per node across partitions and trainers.
  std::vector<int> count(8, 0);
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::uint32_t t = 0; t < 64; ++t) ++count[spec.provider_for(p, t)];
  }
  // 256 assignments over 8 nodes: expect every node used, none hoarding.
  for (int c : count) {
    EXPECT_GT(c, 10);
    EXPECT_LT(c, 64);
  }
  // And hashed differs from round-robin for at least some trainers.
  TaskSpec rr(1024, 4, 64);
  rr.build_round_robin(1, 8, 8);
  int differs = 0;
  for (std::uint32_t t = 0; t < 64; ++t) {
    if (spec.provider_for(0, t) != rr.provider_for(0, t)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(ProtocolFaults, BatchedAnnounceProducesSameResult) {
  auto plain = base_config();
  Deployment d1(plain);
  (void)d1.run_round(0);

  auto batched = base_config();
  batched.options.batched_announce = true;
  Deployment d2(batched);
  (void)d2.run_round(0);

  ASSERT_EQ(d1.last_global_update().size(), d2.last_global_update().size());
  for (std::size_t i = 0; i < d1.last_global_update().size(); ++i) {
    ASSERT_DOUBLE_EQ(d1.last_global_update()[i], d2.last_global_update()[i]);
  }
}

TEST(ProtocolFaults, BatchedAnnounceReducesDirectoryMessages) {
  auto plain = base_config();
  Deployment d1(plain);
  (void)d1.run_round(0);
  const auto& s1 = d1.directory().stats();

  auto batched = base_config();
  batched.options.batched_announce = true;
  Deployment d2(batched);
  (void)d2.run_round(0);
  const auto& s2 = d2.directory().stats();

  // Same number of registered entries, fewer messages.
  EXPECT_EQ(s1.announcements, s2.announcements);
  EXPECT_LT(s2.announce_messages, s1.announce_messages);
  // 6 trainers -> 6 batched gradient messages (+ aggregator announcements).
  EXPECT_LE(s2.announce_messages, 6u + 2u * plain.num_partitions);
}

TEST(ProtocolFaults, BatchedAnnounceWithVerifiability) {
  auto cfg = base_config();
  cfg.options.batched_announce = true;
  cfg.options.verifiable = true;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_EQ(m.rejected_updates, 0);
  expect_update_equals(d, {0, 1, 2, 3, 4, 5});
}

TEST(ProtocolFaults, BatchedAnnounceCatchesMaliciousAggregator) {
  auto cfg = base_config();
  cfg.options.batched_announce = true;
  cfg.options.verifiable = true;
  cfg.behaviors[0] = AggBehavior::kDropsGradients;
  Deployment d(cfg);
  const RoundMetrics m = d.run_round(0);
  EXPECT_GT(m.rejected_updates, 0);
  EXPECT_TRUE(d.last_global_update().empty());
}

TEST(ProtocolFaults, RecoveryAcrossRounds) {
  // A trainer is offline in round 0 and healthy in round 1; the system
  // must include it again (the paper's partially-asynchronous setting).
  auto cfg = base_config();
  cfg.trainer_behaviors[3] = TrainerBehavior::kOffline;
  Deployment d(cfg);
  (void)d.run_round(0);
  expect_update_equals(d, {0, 1, 2, 4, 5});
  d.trainer(3).set_behavior(TrainerBehavior::kHonest);
  const RoundMetrics m1 = d.run_round(1);
  EXPECT_EQ(m1.aggregators[0].gradients_aggregated, 6u);
}

TEST(ProtocolFaults, UpdateReplicasAreRegisteredAsProviders) {
  auto cfg = base_config();
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 4;
  cfg.options.update_replicas = 3;
  Deployment d(cfg);
  (void)d.run_round(0);
  const auto rows = d.directory().rows(0, 0, directory::EntryType::kGlobalUpdate);
  ASSERT_FALSE(rows.empty());
  EXPECT_GE(d.swarm().providers(rows.front().cid).size(), 3u);
}

}  // namespace
}  // namespace dfl::core
