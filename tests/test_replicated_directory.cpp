// Replicated-directory tests: write fan-out, read failover, and whole FL
// rounds surviving the loss of the primary directory host.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "directory/replicated.hpp"

namespace dfl::directory {
namespace {

struct ReplicatedFixture : ::testing::Test {
  sim::Simulator sim;
  sim::Network net{sim};
  ipfs::Swarm swarm{net};
  std::vector<sim::Host*> hosts{
      &net.add_host("dir0", sim::HostConfig{100e6, 100e6, 0}),
      &net.add_host("dir1", sim::HostConfig{100e6, 100e6, 0}),
      &net.add_host("dir2", sim::HostConfig{100e6, 100e6, 0})};
  sim::Host& client = net.add_host("client", sim::HostConfig{10e6, 10e6, 0});
  ReplicatedDirectory dir{net, hosts, swarm, DirectoryConfig{}};

  template <typename T>
  T run(sim::Task<T> task) {
    std::optional<T> out;
    sim.spawn([](sim::Task<T> t, std::optional<T>& o) -> sim::Task<void> {
      o = co_await std::move(t);
    }(std::move(task), out));
    sim.run();
    if (!out) throw std::runtime_error("task did not complete");
    return *out;
  }
};

TEST_F(ReplicatedFixture, WritesReachEveryReplica) {
  const Addr addr{1, 0, 0, EntryType::kGradient};
  const ipfs::Cid cid = ipfs::Cid::of(dfl::bytes_of("g"));
  EXPECT_TRUE(run(dir.announce(client, addr, cid)));
  for (std::size_t i = 0; i < dir.replica_count(); ++i) {
    EXPECT_EQ(dir.replica(i).find(addr), std::optional<ipfs::Cid>(cid)) << "replica " << i;
  }
}

TEST_F(ReplicatedFixture, ReadsFailOverWhenPrimaryDies) {
  const Addr addr{1, 0, 0, EntryType::kGradient};
  const ipfs::Cid cid = ipfs::Cid::of(dfl::bytes_of("g"));
  (void)run(dir.announce(client, addr, cid));
  hosts[0]->set_up(false);
  EXPECT_EQ(run(dir.lookup(client, addr)), std::optional<ipfs::Cid>(cid));
  const auto rows = run(dir.poll(client, 0, 0, EntryType::kGradient));
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(ReplicatedFixture, WritesSkipDeadReplicasAndCatchUpIsVisible) {
  hosts[1]->set_up(false);
  const Addr addr{2, 0, 0, EntryType::kGradient};
  const ipfs::Cid cid = ipfs::Cid::of(dfl::bytes_of("h"));
  EXPECT_TRUE(run(dir.announce(client, addr, cid)));
  EXPECT_EQ(dir.replica(0).find(addr), std::optional<ipfs::Cid>(cid));
  EXPECT_EQ(dir.replica(1).find(addr), std::nullopt);  // missed the write
  EXPECT_EQ(dir.replica(2).find(addr), std::optional<ipfs::Cid>(cid));
}

TEST_F(ReplicatedFixture, AllReplicasDownThrows) {
  for (sim::Host* h : hosts) h->set_up(false);
  bool threw = false;
  sim.spawn([](ReplicatedDirectory& d, sim::Host& c, bool& out) -> sim::Task<void> {
    try {
      (void)co_await d.poll(c, 0, 0, EntryType::kGradient);
    } catch (const std::exception&) {
      out = true;
    }
  }(dir, client, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST_F(ReplicatedFixture, GcAndStatsFanOut) {
  const Addr addr{1, 0, 0, EntryType::kGradient};
  (void)run(dir.announce(client, addr, ipfs::Cid::of(dfl::bytes_of("x"))));
  EXPECT_EQ(dir.stats().announcements, 1u);
  dir.gc_before(1);
  for (std::size_t i = 0; i < dir.replica_count(); ++i) {
    EXPECT_TRUE(dir.replica(i).rows(0, 0, EntryType::kGradient).empty());
  }
  dir.reset_stats();
  EXPECT_EQ(dir.stats().announcements, 0u);
}

TEST(ReplicatedProtocol, RoundCompletesWithReplicatedDirectory) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 6;
  cfg.num_partitions = 2;
  cfg.partition_elements = 32;
  cfg.num_ipfs_nodes = 2;
  cfg.directory_replicas = 3;
  cfg.train_time = sim::from_millis(200);
  cfg.schedule =
      core::Schedule{sim::from_seconds(20), sim::from_seconds(40), sim::from_millis(50)};
  core::Deployment d(cfg);
  const core::RoundMetrics m = d.run_round(0);
  for (const auto& t : m.trainers) EXPECT_FALSE(t.update_missing);
  EXPECT_FALSE(d.last_global_update().empty());
  EXPECT_EQ(d.directory_hosts().size(), 3u);
}

TEST(ReplicatedProtocol, RoundSurvivesPrimaryDirectoryFailure) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 6;
  cfg.num_partitions = 2;
  cfg.partition_elements = 4096;  // big enough that the round spans seconds
  cfg.num_ipfs_nodes = 2;
  cfg.directory_replicas = 2;
  cfg.train_time = sim::from_millis(500);
  cfg.schedule =
      core::Schedule{sim::from_seconds(30), sim::from_seconds(60), sim::from_millis(50)};
  core::Deployment d(cfg);
  // Primary directory dies mid-round; the standby has every prior write.
  d.simulator().schedule_at(sim::from_millis(900), [&] {
    d.directory_hosts()[0]->set_up(false);
  });
  const core::RoundMetrics m = d.run_round(0);
  for (const auto& t : m.trainers) EXPECT_FALSE(t.update_missing);
  EXPECT_FALSE(d.last_global_update().empty());
}

TEST(ReplicatedProtocol, SingleReplicaFailureKillsUnreplicatedRound) {
  // Control: without replication, losing the directory stalls the round.
  core::DeploymentConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_partitions = 1;
  cfg.partition_elements = 4096;
  cfg.num_ipfs_nodes = 2;
  cfg.directory_replicas = 1;
  cfg.train_time = sim::from_millis(500);
  cfg.schedule =
      core::Schedule{sim::from_seconds(10), sim::from_seconds(20), sim::from_millis(50)};
  core::Deployment d(cfg);
  d.simulator().schedule_at(sim::from_millis(600), [&] {
    d.directory_hosts()[0]->set_up(false);
  });
  (void)d.run_round(0);
  EXPECT_TRUE(d.last_global_update().empty());
}

TEST(ReplicatedProtocol, VerifiableModeWithReplicatedDirectory) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_partitions = 1;
  cfg.partition_elements = 32;
  cfg.num_ipfs_nodes = 2;
  cfg.directory_replicas = 2;
  cfg.options.verifiable = true;
  cfg.behaviors[0] = core::AggBehavior::kDropsGradients;
  cfg.train_time = sim::from_millis(200);
  cfg.schedule =
      core::Schedule{sim::from_seconds(10), sim::from_seconds(20), sim::from_millis(50)};
  core::Deployment d(cfg);
  const core::RoundMetrics m = d.run_round(0);
  // Every replica independently rejects the incomplete update.
  EXPECT_GT(m.rejected_updates, 0);
  EXPECT_TRUE(d.last_global_update().empty());
}

}  // namespace
}  // namespace dfl::directory
