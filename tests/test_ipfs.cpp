#include <gtest/gtest.h>

#include "core/payload.hpp"
#include "ipfs/blockstore.hpp"
#include "ipfs/cid.hpp"
#include "ipfs/node.hpp"
#include "ipfs/pubsub.hpp"
#include "ipfs/swarm.hpp"

namespace dfl::ipfs {
namespace {

TEST(Cid, DeterministicAndContentBound) {
  const Bytes a = dfl::bytes_of("hello");
  const Bytes b = dfl::bytes_of("world");
  EXPECT_EQ(Cid::of(a), Cid::of(a));
  EXPECT_NE(Cid::of(a), Cid::of(b));
  EXPECT_TRUE(Cid::of(a).matches(a));
  EXPECT_FALSE(Cid::of(a).matches(b));
}

TEST(Cid, NullCid) {
  EXPECT_TRUE(Cid{}.is_null());
  EXPECT_FALSE(Cid::of(dfl::bytes_of("x")).is_null());
}

TEST(Cid, DigestRoundTrip) {
  const Cid c = Cid::of(dfl::bytes_of("data"));
  const Cid c2 = Cid::from_digest(BytesView(c.digest().data(), c.digest().size()));
  EXPECT_EQ(c, c2);
  EXPECT_EQ(c.to_hex().size(), 64u);
}

TEST(Cid, FromDigestRejectsWrongLength) {
  EXPECT_THROW((void)Cid::from_digest(Bytes(31, 0)), std::invalid_argument);
}

TEST(BlockStoreTest, PutGetRemove) {
  BlockStore store;
  const Bytes data = dfl::bytes_of("block-content");
  const Cid cid = store.put(data);
  EXPECT_TRUE(store.has(cid));
  EXPECT_EQ(store.get(cid), data);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), data.size());
  EXPECT_TRUE(store.remove(cid));
  EXPECT_FALSE(store.has(cid));
  EXPECT_EQ(store.bytes_stored(), 0u);
  EXPECT_FALSE(store.remove(cid));
}

TEST(BlockStoreTest, PutIsIdempotent) {
  BlockStore store;
  const Bytes data = dfl::bytes_of("same");
  const Cid a = store.put(data);
  const Cid b = store.put(data);
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), data.size());
}

TEST(BlockStoreTest, GetMissingReturnsNullopt) {
  BlockStore store;
  EXPECT_FALSE(store.get(Cid::of(dfl::bytes_of("nope"))).has_value());
}

struct IpfsFixture : ::testing::Test {
  sim::Simulator sim;
  sim::Network net{sim};
  Swarm swarm{net, SwarmConfig{sim::from_millis(10), IpfsNodeConfig{}}};
  sim::Host& client = net.add_host("client", sim::HostConfig{10e6, 10e6, 0});

  template <typename T>
  T run(sim::Task<T> task, bool* threw = nullptr) {
    std::optional<T> out;
    sim.spawn([](sim::Task<T> t, std::optional<T>& o, bool* flag) -> sim::Task<void> {
      try {
        o = co_await std::move(t);
      } catch (const std::exception&) {
        if (flag != nullptr) *flag = true;
      }
    }(std::move(task), out, threw));
    sim.run();
    if (!out.has_value()) {
      if (threw != nullptr && *threw) return T{};
      throw std::runtime_error("task did not complete");
    }
    return *out;
  }

  void run_void(sim::Task<void> task) {
    bool done = false;
    sim.spawn([](sim::Task<void> t, bool& d) -> sim::Task<void> {
      co_await std::move(t);
      d = true;
    }(std::move(task), done));
    sim.run();
    ASSERT_TRUE(done);
  }
};

TEST_F(IpfsFixture, PutThenGetRoundTrip) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = dfl::bytes_of("gradient bytes");
  const Cid cid = run(node.put(client, data));
  EXPECT_TRUE(node.store().has(cid));
  EXPECT_EQ(run(node.get(client, cid)), data);
}

TEST_F(IpfsFixture, PutRegistersProvider) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  (void)swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  const Cid cid = run(n0.put(client, dfl::bytes_of("x")));
  EXPECT_EQ(swarm.providers(cid), std::vector<std::uint32_t>{0});
}

TEST_F(IpfsFixture, GetMissingThrows) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  bool threw = false;
  (void)run(node.get(client, Cid::of(dfl::bytes_of("missing"))), &threw);
  EXPECT_TRUE(threw);
}

TEST_F(IpfsFixture, FetchResolvesThroughProviders) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  (void)swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = dfl::bytes_of("replicated");
  const Cid cid = n0.put_local(data);
  EXPECT_EQ(run(swarm.fetch(client, cid)), data);
}

TEST_F(IpfsFixture, FetchSkipsDeadProviders) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  IpfsNode& n1 = swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = dfl::bytes_of("ha");
  const Cid cid = n0.put_local(data);
  n1.put_local(data);
  n0.host().set_up(false);
  EXPECT_EQ(run(swarm.fetch(client, cid)), data);  // falls through to n1
}

TEST_F(IpfsFixture, FetchFailsWhenNoLiveProvider) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Cid cid = n0.put_local(dfl::bytes_of("gone"));
  n0.host().set_up(false);
  bool threw = false;
  (void)run(swarm.fetch(client, cid), &threw);
  EXPECT_TRUE(threw);
}

TEST_F(IpfsFixture, ReplicateSpreadsBlocks) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  (void)swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  (void)swarm.add_node("n2", sim::HostConfig{10e6, 10e6, 0});
  const Cid cid = n0.put_local(dfl::bytes_of("replica-me"));
  EXPECT_EQ(run(swarm.replicate(cid, 3)), 3u);
  EXPECT_EQ(swarm.providers(cid).size(), 3u);
  EXPECT_TRUE(swarm.node(1).store().has(cid));
  EXPECT_TRUE(swarm.node(2).store().has(cid));
}

TEST_F(IpfsFixture, ReplicateShortOfNodesAchievesWhatItCan) {
  // 3 nodes, one of them down: asking for 5 copies must not throw or loop —
  // it replicates to every live node and reports the achieved count.
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  (void)swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  IpfsNode& n2 = swarm.add_node("n2", sim::HostConfig{10e6, 10e6, 0});
  n2.host().set_up(false);
  const Cid cid = n0.put_local(dfl::bytes_of("scarce"));
  EXPECT_EQ(run(swarm.replicate(cid, 5)), 2u);
  EXPECT_TRUE(swarm.node(1).store().has(cid));
  EXPECT_FALSE(swarm.node(2).store().has(cid));
}

TEST_F(IpfsFixture, ReplicateWithNoLiveHolderIsUnavailable) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  (void)swarm.add_node("n1", sim::HostConfig{10e6, 10e6, 0});
  const Cid cid = n0.put_local(dfl::bytes_of("orphaned"));
  n0.host().set_up(false);
  bool threw = false;
  sim.spawn([](Swarm& s, Cid c, bool& out) -> sim::Task<void> {
    try {
      (void)co_await s.replicate(c, 2);
    } catch (const UnavailableError&) {
      out = true;
    }
  }(swarm, cid, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST_F(IpfsFixture, FetchDistinguishesNotFoundFromUnavailable) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Cid never_existed = Cid::of(dfl::bytes_of("never-put"));
  const Cid parked = n0.put_local(dfl::bytes_of("parked"));
  n0.host().set_up(false);

  bool not_found = false;
  bool unavailable = false;
  sim.spawn([](Swarm& s, sim::Host& c, Cid missing, Cid down, bool& nf,
               bool& ua) -> sim::Task<void> {
    try {
      (void)co_await s.fetch(c, missing);
    } catch (const NotFoundError&) {
      nf = true;
    }
    try {
      (void)co_await s.fetch(c, down);
    } catch (const UnavailableError&) {
      ua = true;
    }
  }(swarm, client, never_existed, parked, not_found, unavailable));
  sim.run();
  EXPECT_TRUE(not_found);    // no provider record: block never existed
  EXPECT_TRUE(unavailable);  // record exists, every provider is down
}

TEST_F(IpfsFixture, FetchWithRetrySurvivesProviderRestart) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Bytes data = dfl::bytes_of("come-back");
  const Cid cid = n0.put_local(data);
  n0.host().set_up(false);
  // The node restarts 2 s in; a policy with enough attempts rides it out.
  sim.schedule_at(sim::from_seconds(2), [&] { n0.host().set_up(true); });
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff = sim::from_millis(500);
  policy.jitter_frac = 0.0;
  RetryStats stats;
  EXPECT_EQ(run(swarm.fetch_with_retry(client, cid, policy, -1, &stats)), data);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.giveups, 0u);
}

TEST_F(IpfsFixture, FetchWithRetryRespectsDeadline) {
  IpfsNode& n0 = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Cid cid = n0.put_local(dfl::bytes_of("too-late"));
  n0.host().set_up(false);  // never restarts
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.base_backoff = sim::from_millis(100);
  policy.backoff_multiplier = 1.0;
  const sim::TimeNs deadline = sim.now() + sim::from_seconds(3);
  RetryStats stats;
  bool threw = false;
  (void)run(swarm.fetch_with_retry(client, cid, policy, deadline, &stats), &threw);
  EXPECT_TRUE(threw);
  // May overshoot by at most one in-flight attempt (the lookup latency).
  EXPECT_LE(sim.now(), deadline + sim::from_millis(100));
  EXPECT_EQ(stats.giveups, 1u);
}

TEST_F(IpfsFixture, PutWithRetryTimesOutOnSlowNode) {
  // A severely degraded path: the attempt deadline fires before the
  // transfer lands, the attempt is abandoned, and the op reports timeouts.
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{8e3, 8e3, 0});  // 8 kbps
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.attempt_timeout = sim::from_seconds(1);
  policy.base_backoff = sim::from_millis(10);
  policy.jitter_frac = 0.0;
  RetryStats stats;
  const auto got = run(swarm.put_with_retry(node.node_id(), client, Bytes(4096, 1), policy,
                                            -1, &stats));
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(stats.timeouts, 2u);
  EXPECT_EQ(stats.giveups, 1u);
}

TEST_F(IpfsFixture, MergeGetWithRetryDegradesOnMissingBlock) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Cid present = node.put_local(core::Payload{{1, 1}}.serialize());
  const Cid absent = Cid::of(dfl::bytes_of("absent"));
  core::PayloadMerger merger;
  RetryPolicy policy;
  RetryStats stats;
  const auto merged = run(swarm.merge_get_with_retry(node.node_id(), client, {present, absent},
                                                     merger, policy, -1, &stats));
  EXPECT_FALSE(merged.has_value());  // graceful degradation, not an exception
  EXPECT_EQ(stats.attempts, 1u);     // NotFoundError is not retried
}

TEST_F(IpfsFixture, MergeGetSumsPayloads) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  core::Payload p1{{1, 2, 3, 1}};
  core::Payload p2{{10, 20, 30, 1}};
  const Cid c1 = node.put_local(p1.serialize());
  const Cid c2 = node.put_local(p2.serialize());
  core::PayloadMerger merger;
  const Block merged = run(node.merge_get(client, {c1, c2}, merger));
  const core::Payload result = core::Payload::deserialize(merged);
  EXPECT_EQ(result.values, (std::vector<std::int64_t>{11, 22, 33, 2}));
}

TEST_F(IpfsFixture, MergeGetShipsOnlyMergedBytes) {
  net.set_per_message_overhead(0);
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  core::Payload big;
  big.values.assign(10000, 7);
  core::Payload big2;
  big2.values.assign(10000, 9);
  const Cid c1 = node.put_local(big.serialize());
  const Cid c2 = node.put_local(big2.serialize());
  const std::uint64_t before = client.bytes_received();
  core::PayloadMerger merger;
  (void)run(node.merge_get(client, {c1, c2}, merger));
  const std::uint64_t received = client.bytes_received() - before;
  // One payload's worth (~80KB), not two.
  EXPECT_LT(received, big.serialize().size() + 1000);
}

TEST_F(IpfsFixture, MergeGetMissingBlockThrows) {
  IpfsNode& node = swarm.add_node("n0", sim::HostConfig{10e6, 10e6, 0});
  const Cid present = node.put_local(core::Payload{{1, 1}}.serialize());
  const Cid absent = Cid::of(dfl::bytes_of("absent"));
  core::PayloadMerger merger;
  bool threw = false;
  (void)run(node.merge_get(client, {present, absent}, merger), &threw);
  EXPECT_TRUE(threw);
}

TEST_F(IpfsFixture, MergeComputeTimeChargesSimClock) {
  net.set_per_message_overhead(0);
  // A node that merges at 1 MB/s: pre-aggregating ~160 KB of payloads must
  // take ~0.16 s of simulated time on top of the transfers.
  Swarm slow_swarm{net, SwarmConfig{0, IpfsNodeConfig{1e6}}};
  IpfsNode& node = slow_swarm.add_node("slow", sim::HostConfig{1e9, 1e9, 0});
  core::Payload big;
  big.values.assign(10'000, 3);
  const Cid c1 = node.put_local(big.serialize());
  core::Payload big2;
  big2.values.assign(10'000, 4);
  const Cid c2 = node.put_local(big2.serialize());
  core::PayloadMerger merger;
  const sim::TimeNs start = sim.now();
  (void)run(node.merge_get(client, {c1, c2}, merger));
  const double elapsed = sim::to_seconds(sim.now() - start);
  EXPECT_GT(elapsed, 0.15);  // ~160 KB / 1 MB/s of merge compute
  EXPECT_LT(elapsed, 0.5);
}

TEST_F(IpfsFixture, PubSubDeliversToSubscribers) {
  PubSub ps(net);
  sim::Host& sub1 = net.add_host("s1", sim::HostConfig{10e6, 10e6, 0});
  sim::Host& sub2 = net.add_host("s2", sim::HostConfig{10e6, 10e6, 0});
  auto& mb1 = ps.subscribe("topic", sub1);
  auto& mb2 = ps.subscribe("topic", sub2);
  EXPECT_EQ(ps.subscriber_count("topic"), 2u);
  run_void(ps.publish(client, "topic", dfl::bytes_of("msg")));
  ASSERT_EQ(mb1.size(), 1u);
  ASSERT_EQ(mb2.size(), 1u);
}

TEST_F(IpfsFixture, PubSubSkipsSenderAndOtherTopics) {
  PubSub ps(net);
  auto& own = ps.subscribe("topic", client);
  sim::Host& other = net.add_host("o", sim::HostConfig{10e6, 10e6, 0});
  auto& other_mb = ps.subscribe("other-topic", other);
  run_void(ps.publish(client, "topic", dfl::bytes_of("m")));
  EXPECT_TRUE(own.empty());       // no self-delivery
  EXPECT_TRUE(other_mb.empty());  // different topic
}

TEST_F(IpfsFixture, PubSubBestEffortWithDeadSubscriber) {
  PubSub ps(net);
  sim::Host& dead = net.add_host("dead", sim::HostConfig{10e6, 10e6, 0});
  sim::Host& live = net.add_host("live", sim::HostConfig{10e6, 10e6, 0});
  auto& dead_mb = ps.subscribe("t", dead);
  auto& live_mb = ps.subscribe("t", live);
  dead.set_up(false);
  run_void(ps.publish(client, "t", dfl::bytes_of("m")));
  EXPECT_TRUE(dead_mb.empty());
  EXPECT_EQ(live_mb.size(), 1u);
}

TEST_F(IpfsFixture, PubSubUnsubscribe) {
  PubSub ps(net);
  sim::Host& s = net.add_host("s", sim::HostConfig{10e6, 10e6, 0});
  ps.subscribe("t", s);
  ps.unsubscribe("t", s);  // destroys the mailbox; don't hold a reference
  EXPECT_EQ(ps.subscriber_count("t"), 0u);
  run_void(ps.publish(client, "t", dfl::bytes_of("m")));
  // A fresh subscription is empty: the message published while
  // unsubscribed was never delivered anywhere.
  EXPECT_TRUE(ps.subscribe("t", s).empty());
}

TEST_F(IpfsFixture, SubscribeTwiceReturnsSameMailbox) {
  PubSub ps(net);
  sim::Host& s = net.add_host("s", sim::HostConfig{10e6, 10e6, 0});
  EXPECT_EQ(&ps.subscribe("t", s), &ps.subscribe("t", s));
  EXPECT_EQ(ps.subscriber_count("t"), 1u);
}

}  // namespace
}  // namespace dfl::ipfs
