// Barrier-free async rounds: overlapped launch cadence, rerun and sharded
// determinism, staleness-weighted folds for stragglers, codec interplay,
// and the config validation the Deployment constructor enforces.
#include <gtest/gtest.h>

#include <memory>

#include "core/runner.hpp"

namespace dfl::core {
namespace {

DeploymentConfig tiny_async() {
  DeploymentConfig cfg;
  cfg.num_trainers = 4;
  cfg.num_partitions = 2;
  cfg.partition_elements = 16;
  cfg.num_ipfs_nodes = 2;
  cfg.train_time = sim::from_millis(100);
  cfg.schedule = Schedule{sim::from_seconds(2), sim::from_seconds(4), sim::from_millis(50)};
  cfg.options.async_rounds = true;
  return cfg;
}

std::uint64_t total_stale_folds(const RoundMetrics& m) {
  std::uint64_t n = 0;
  for (const AggregatorRecord& a : m.aggregators) n += a.stale_folds;
  return n;
}

std::uint64_t total_fresh_folds(const RoundMetrics& m) {
  std::uint64_t n = 0;
  for (const AggregatorRecord& a : m.aggregators) n += a.fresh_folds;
  return n;
}

TEST(AsyncRounds, CompletesEveryRoundOnTheLaunchCadence) {
  auto cfg = tiny_async();
  cfg.options.async_period = sim::from_seconds(1);
  Deployment d(cfg);
  const RunSummary s = d.run(4);
  ASSERT_EQ(s.rounds.size(), 4u);
  ASSERT_EQ(s.updates.size(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(s.rounds[r].iter, r);
    EXPECT_TRUE(s.rounds[r].global_update_complete) << "round " << r;
    EXPECT_FALSE(s.updates[r].empty()) << "round " << r;
    EXPECT_GT(total_fresh_folds(s.rounds[r]), 0u);
  }
  // Rounds launch period apart, not t_sync apart — that is the speedup.
  EXPECT_EQ(s.rounds[1].round_start - s.rounds[0].round_start, sim::from_seconds(1));
  // Round 1 is already uploading before round 0's collection boundary.
  EXPECT_LT(s.rounds[1].first_gradient_announce,
            s.rounds[0].round_start + cfg.schedule.t_sync);
}

TEST(AsyncRounds, DeterministicAcrossIdenticalDeployments) {
  auto cfg = tiny_async();
  cfg.seed = 77;
  Deployment a(cfg);
  Deployment b(cfg);
  const RunSummary sa = a.run(3);
  const RunSummary sb = b.run(3);
  ASSERT_EQ(sa.updates.size(), sb.updates.size());
  for (std::size_t r = 0; r < sa.updates.size(); ++r) {
    ASSERT_EQ(sa.updates[r].size(), sb.updates[r].size()) << "round " << r;
    for (std::size_t i = 0; i < sa.updates[r].size(); ++i) {
      EXPECT_DOUBLE_EQ(sa.updates[r][i], sb.updates[r][i]);
    }
    EXPECT_EQ(sa.rounds[r].round_done, sb.rounds[r].round_done);
  }
}

TEST(AsyncRounds, ShardedRunIsBitIdenticalToSerial) {
  auto cfg = tiny_async();
  cfg.seed = 99;
  Deployment serial(cfg);
  cfg.shards = 2;
  Deployment sharded(cfg);
  const RunSummary ss = serial.run(3);
  const RunSummary sh = sharded.run(3);
  ASSERT_EQ(ss.updates.size(), sh.updates.size());
  for (std::size_t r = 0; r < ss.updates.size(); ++r) {
    ASSERT_EQ(ss.updates[r].size(), sh.updates[r].size());
    for (std::size_t i = 0; i < ss.updates[r].size(); ++i) {
      EXPECT_DOUBLE_EQ(ss.updates[r][i], sh.updates[r][i]);
    }
    EXPECT_EQ(ss.rounds[r].round_done, sh.rounds[r].round_done);
  }
  // The windowed driver actually ran (and recorded its windows).
  std::uint64_t windows = 0;
  for (const RoundMetrics& m : sh.rounds) windows += m.sharding.windows;
  EXPECT_GT(windows, 0u);
}

TEST(AsyncRounds, StragglerFoldsInStaleAtReducedWeight) {
  auto cfg = tiny_async();
  // Slow compute overruns t_train by 1s; the fresh gather deadline is
  // t_train + (t_sync - t_train)/4 = 2.5s, so the straggler always misses
  // it and is represented by its previous iteration's gradient instead.
  cfg.trainer_behaviors[0] = TrainerBehavior::kSlow;
  Deployment d(cfg);
  const RunSummary s = d.run(4);
  ASSERT_EQ(s.rounds.size(), 4u);
  // Round 0 has no prior iteration to cover from.
  EXPECT_EQ(total_stale_folds(s.rounds[0]), 0u);
  std::uint64_t stale = 0;
  for (std::size_t r = 1; r < s.rounds.size(); ++r) stale += total_stale_folds(s.rounds[r]);
  EXPECT_GT(stale, 0u) << "the straggler's late uploads should fold in stale";
  for (const RoundMetrics& m : s.rounds) EXPECT_GT(total_fresh_folds(m), 0u);
}

TEST(AsyncRounds, QuantizedAsyncIsDeterministic) {
  auto cfg = tiny_async();
  cfg.options.codec = Codec::kQuant;
  cfg.options.quant_bits = 8;
  Deployment a(cfg);
  Deployment b(cfg);
  const RunSummary sa = a.run(3);
  const RunSummary sb = b.run(3);
  ASSERT_EQ(sa.updates.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(sa.rounds[r].global_update_complete);
    ASSERT_EQ(sa.updates[r].size(), sb.updates[r].size());
    for (std::size_t i = 0; i < sa.updates[r].size(); ++i) {
      EXPECT_DOUBLE_EQ(sa.updates[r][i], sb.updates[r][i]);
    }
    // The lossy path actually encoded something.
    EXPECT_GT(sa.rounds[r].codec.encodes, 0u);
    EXPECT_LT(sa.rounds[r].codec.encoded_bytes, sa.rounds[r].codec.raw_bytes);
  }
}

TEST(AsyncRounds, SyncRunStillWorksWithCodec) {
  auto cfg = tiny_async();
  cfg.options.async_rounds = false;
  cfg.options.codec = Codec::kTopK;
  cfg.options.topk_frac = 0.5;
  Deployment d(cfg);
  const RunSummary s = d.run(2);
  ASSERT_EQ(s.rounds.size(), 2u);
  for (const RoundMetrics& m : s.rounds) {
    EXPECT_TRUE(m.global_update_complete);
    EXPECT_GT(m.codec.encodes, 0u);
    EXPECT_GT(m.codec.compression(), 1.5);
  }
}

TEST(AsyncRounds, RejectsInvalidConfigurations) {
  {
    auto cfg = tiny_async();
    cfg.options.verifiable = true;
    EXPECT_THROW((void)std::make_unique<Deployment>(cfg), std::invalid_argument);
  }
  {
    auto cfg = tiny_async();
    cfg.options.codec = Codec::kQuant;
    cfg.options.quant_bits = 1;
    EXPECT_THROW((void)std::make_unique<Deployment>(cfg), std::invalid_argument);
  }
  {
    auto cfg = tiny_async();
    cfg.options.codec = Codec::kTopK;
    cfg.options.topk_frac = 0.0;
    EXPECT_THROW((void)std::make_unique<Deployment>(cfg), std::invalid_argument);
  }
}

}  // namespace
}  // namespace dfl::core
