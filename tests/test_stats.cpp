#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace dfl {
namespace {

TEST(Stats, MeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // sample variance (n-1)
}

TEST(Stats, MinMax) {
  Summary s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Stats, PercentileInterpolates) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Stats, PercentileSingleSample) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, PercentileOnEmptyThrows) {
  Summary s;
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(Stats, VarianceOfConstantIsZero) {
  Summary s;
  for (int i = 0; i < 10; ++i) s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

}  // namespace
}  // namespace dfl
