#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace dfl {
namespace {

TEST(Stats, MeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // sample variance (n-1)
}

TEST(Stats, MinMax) {
  Summary s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Stats, PercentileInterpolates) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Stats, PercentileSingleSample) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, PercentileOnEmptyThrows) {
  Summary s;
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(Stats, VarianceOfConstantIsZero) {
  Summary s;
  for (int i = 0; i < 10; ++i) s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(LogHistogram, EmptyIsAllZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;  // sub_bucket_bits=3: values < 16 land in unit buckets
  for (std::uint64_t v : {0u, 1u, 5u, 15u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 21u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  // Each value has its own bucket, so percentiles are exact.
  EXPECT_EQ(h.percentile(100), 15u);
  EXPECT_EQ(h.percentile(0), 0u);
  const auto buckets = h.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 4u);
  for (const auto& b : buckets) {
    EXPECT_EQ(b.lo, b.hi);  // unit buckets
    EXPECT_EQ(b.count, 1u);
  }
}

TEST(LogHistogram, LargeValuesBoundedRelativeError) {
  LogHistogram h;  // 2^-3 = 12.5% relative error ceiling
  const std::uint64_t v = 1'000'000;
  h.record(v);
  const std::uint64_t p = h.percentile(50);
  EXPECT_GE(p, v);                      // bucket upper bound ≥ value
  EXPECT_LE(p, v + v / 8);              // within 12.5%
  EXPECT_EQ(h.max(), v);                // true extrema are tracked exactly
  EXPECT_EQ(h.min(), v);
  EXPECT_EQ(h.sum(), v);                // sum is exact too
}

TEST(LogHistogram, PercentileClampsToRecordedMax) {
  LogHistogram h;
  h.record(1000);
  // The bucket's upper bound exceeds 1000, but the histogram never
  // reports a percentile above what was actually seen.
  EXPECT_LE(h.percentile(100), 1000u);
}

TEST(LogHistogram, WeightedRecordAndPercentiles) {
  LogHistogram h;
  h.record(1, 90);   // 90 fast ops
  h.record(8, 9);    // 9 medium
  h.record(12, 1);   // 1 slow
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 1u);
  EXPECT_EQ(h.percentile(95), 8u);
  EXPECT_EQ(h.percentile(100), 12u);
}

TEST(LogHistogram, MergeCombinesCountsAndExtrema) {
  LogHistogram a;
  LogHistogram b;
  a.record(5);
  a.record(100);
  b.record(2);
  b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1'000'107u);
  EXPECT_EQ(a.min(), 2u);
  EXPECT_EQ(a.max(), 1'000'000u);
}

TEST(LogHistogram, ResetClearsEverything) {
  LogHistogram h;
  h.record(42, 10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

}  // namespace
}  // namespace dfl
